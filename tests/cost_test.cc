#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "la/parser.h"
#include "la/vrem.h"
#include "matrix/generate.h"

namespace hadad::cost {
namespace {

la::ExprPtr Parse(const std::string& s) {
  auto r = la::ParseExpression(s);
  HADAD_CHECK(r.ok());
  return r.value();
}

// Example 7.1's setup, scaled: M is n x k dense, N is k x n dense.
la::MetaCatalog Example71Catalog(int64_t n, int64_t k) {
  la::MetaCatalog catalog;
  catalog["M"] = {.rows = n, .cols = k,
                  .nnz = static_cast<double>(n * k)};
  catalog["N"] = {.rows = k, .cols = n,
                  .nnz = static_cast<double>(n * k)};
  return catalog;
}

TEST(CostModelTest, Example71ChainOrderCosts) {
  // γ((MN)M) = n*n (the MN intermediate); γ(M(NM)) = k*k.
  const int64_t n = 50000, k = 100;
  la::MetaCatalog catalog = Example71Catalog(n, k);
  NaiveMetadataEstimator naive;
  auto e1 = EstimateExpression(*Parse("(M %*% N) %*% M"), catalog, naive);
  auto e2 = EstimateExpression(*Parse("M %*% (N %*% M)"), catalog, naive);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_DOUBLE_EQ(e1->cost, static_cast<double>(n) * n);
  EXPECT_DOUBLE_EQ(e2->cost, static_cast<double>(k) * k);
}

TEST(CostModelTest, LeavesAndRootAreFree) {
  la::MetaCatalog catalog = Example71Catalog(100, 10);
  NaiveMetadataEstimator naive;
  // A single operator on base inputs has no intermediates.
  auto e = EstimateExpression(*Parse("M %*% N"), catalog, naive);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->cost, 0.0);
  // Leaf scan is free.
  auto leaf = EstimateExpression(*Parse("M"), catalog, naive);
  ASSERT_TRUE(leaf.ok());
  EXPECT_DOUBLE_EQ(leaf->cost, 0.0);
}

TEST(CostModelTest, MonotoneInSubexpressions) {
  // The soundness theorems (§8) require γ monotone: an expression never
  // costs less than its subexpressions.
  la::MetaCatalog catalog = Example71Catalog(1000, 20);
  catalog["C"] = {.rows = 1000, .cols = 1000, .nnz = 1e6};
  NaiveMetadataEstimator naive;
  const char* exprs[] = {"(M %*% N) %*% M", "t(M %*% N)",
                         "sum((M %*% N) %*% M)", "trace(C) + trace(C)"};
  for (const char* text : exprs) {
    la::ExprPtr e = Parse(text);
    auto whole = EstimateExpression(*e, catalog, naive);
    ASSERT_TRUE(whole.ok());
    for (const la::ExprPtr& c : e->children()) {
      auto sub = EstimateExpression(*c, catalog, naive);
      ASSERT_TRUE(sub.ok());
      EXPECT_LE(sub->cost, whole->cost) << text;
    }
  }
}

TEST(EstimatorTest, NaiveWorstCaseMultiply) {
  NaiveMetadataEstimator naive;
  ClassMeta a;
  a.shape = {.rows = 100, .cols = 50, .nnz = 10};  // Ultra sparse.
  ClassMeta b;
  b.shape = {.rows = 50, .cols = 80, .nnz = 4000};  // Dense.
  auto out = naive.Propagate(la::vrem::kMultiM, {a, b});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->shape.rows, 100);
  EXPECT_EQ(out->shape.cols, 80);
  // Worst case: 10 nnz * 80 output columns = 800.
  EXPECT_DOUBLE_EQ(out->shape.nnz, 800.0);
}

TEST(EstimatorTest, NaiveAddAndHadamard) {
  NaiveMetadataEstimator naive;
  ClassMeta a;
  a.shape = {.rows = 10, .cols = 10, .nnz = 30};
  ClassMeta b;
  b.shape = {.rows = 10, .cols = 10, .nnz = 50};
  auto add = naive.Propagate(la::vrem::kAddM, {a, b});
  ASSERT_TRUE(add.has_value());
  EXPECT_DOUBLE_EQ(add->shape.nnz, 80.0);
  auto had = naive.Propagate(la::vrem::kMultiE, {a, b});
  ASSERT_TRUE(had.has_value());
  EXPECT_DOUBLE_EQ(had->shape.nnz, 30.0);
}

TEST(EstimatorTest, ShapeValidationInPropagate) {
  NaiveMetadataEstimator naive;
  ClassMeta a;
  a.shape = {.rows = 10, .cols = 5, .nnz = 50};
  ClassMeta b;
  b.shape = {.rows = 4, .cols = 7, .nnz = 28};
  EXPECT_FALSE(naive.Propagate(la::vrem::kMultiM, {a, b}).has_value());
  EXPECT_FALSE(naive.Propagate(la::vrem::kInvM, {a}).has_value());
  EXPECT_FALSE(naive.Propagate("not_an_op", {a}).has_value());
}

TEST(EstimatorTest, MncBaseHistogramsAreExact) {
  Rng rng(3);
  matrix::Matrix m = matrix::RandomSparse(rng, 30, 20, 0.1);
  MncEstimator mnc;
  la::MatrixMeta meta{.rows = 30, .cols = 20, .nnz = -1};
  ClassMeta base = mnc.MakeBase(meta, &m);
  ASSERT_NE(base.mnc, nullptr);
  EXPECT_EQ(base.mnc->row_nnz.size(), 30u);
  EXPECT_DOUBLE_EQ(base.shape.nnz, static_cast<double>(m.Nnz()));
  double total = 0;
  for (double r : base.mnc->row_nnz) total += r;
  EXPECT_DOUBLE_EQ(total, base.shape.nnz);
}

TEST(EstimatorTest, MncBeatsNaiveOnStructuredProduct) {
  // Diagonal-like A times diagonal-like B: true product is diagonal-like
  // (n non-zeros). MNC sees this through histograms; the worst-case
  // estimator overestimates massively.
  const int64_t n = 100;
  MncEstimator mnc;
  NaiveMetadataEstimator naive;
  la::MatrixMeta meta{.rows = n, .cols = n, .nnz = static_cast<double>(n)};
  // Build an actual diagonal matrix for exact base histograms.
  std::vector<matrix::Triplet> trips;
  for (int64_t i = 0; i < n; ++i) trips.push_back({i, i, 1.0});
  matrix::Matrix diag(matrix::SparseMatrix::FromTriplets(n, n, trips));
  ClassMeta a = mnc.MakeBase(meta, &diag);
  ClassMeta b = a;
  auto mnc_out = mnc.Propagate(la::vrem::kMultiM, {a, b});
  auto naive_out =
      naive.Propagate(la::vrem::kMultiM,
                      {naive.MakeBase(meta, nullptr),
                       naive.MakeBase(meta, nullptr)});
  ASSERT_TRUE(mnc_out.has_value());
  ASSERT_TRUE(naive_out.has_value());
  EXPECT_DOUBLE_EQ(mnc_out->shape.nnz, static_cast<double>(n));
  EXPECT_DOUBLE_EQ(naive_out->shape.nnz, static_cast<double>(n) * n);
}

TEST(EstimatorTest, MncRowColSumsCountNonEmptyLines) {
  MncEstimator mnc;
  la::MatrixMeta meta{.rows = 4, .cols = 4, .nnz = 3};
  matrix::Matrix m(matrix::SparseMatrix::FromTriplets(
      4, 4, {{0, 0, 1.0}, {0, 1, 2.0}, {2, 3, 3.0}}));
  ClassMeta base = mnc.MakeBase(meta, &m);
  auto rs = mnc.Propagate(la::vrem::kRowSums, {base});
  ASSERT_TRUE(rs.has_value());
  EXPECT_DOUBLE_EQ(rs->shape.nnz, 2.0);  // Rows 0 and 2 are non-empty.
  auto cs = mnc.Propagate(la::vrem::kColSums, {base});
  ASSERT_TRUE(cs.has_value());
  EXPECT_DOUBLE_EQ(cs->shape.nnz, 3.0);  // Columns 0, 1, 3.
}

TEST(CostModelTest, SparseAwareCostRanksAlsRewrite) {
  // §2's ALS example: (u v^T - N) v vs u v^T v - N v with ultra-sparse N.
  // The rewrite avoids the dense 2M x 1000 intermediate; here scaled down.
  la::MetaCatalog catalog;
  const int64_t rows = 20000, cols = 100;
  catalog["N"] = {.rows = rows, .cols = cols, .nnz = 400};  // Ultra sparse.
  catalog["u"] = {.rows = rows, .cols = 1,
                  .nnz = static_cast<double>(rows)};
  catalog["v"] = {.rows = cols, .cols = 1,
                  .nnz = static_cast<double>(cols)};
  NaiveMetadataEstimator naive;
  auto original = EstimateExpression(
      *Parse("(u %*% t(v) - N) %*% v"), catalog, naive);
  auto rewrite = EstimateExpression(
      *Parse("u %*% (t(v) %*% v) - N %*% v"), catalog, naive);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(rewrite.ok());
  EXPECT_LT(rewrite->cost, original->cost / 100);
}

TEST(CostModelTest, ErrorsPropagate) {
  la::MetaCatalog catalog;
  catalog["M"] = {.rows = 10, .cols = 5, .nnz = 50};
  NaiveMetadataEstimator naive;
  EXPECT_FALSE(EstimateExpression(*Parse("Q %*% M"), catalog, naive).ok());
  EXPECT_FALSE(EstimateExpression(*Parse("M %*% M"), catalog, naive).ok());
}

// Property sweep: under both estimators, estimated nnz never exceeds cells
// for a pile of random expression shapes.
class EstimatorBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorBoundsTest, NnzBoundedByCells) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  la::MetaCatalog catalog;
  const int64_t n = 20 + static_cast<int64_t>(rng.NextBelow(30));
  const int64_t k = 5 + static_cast<int64_t>(rng.NextBelow(20));
  catalog["A"] = {.rows = n, .cols = k,
                  .nnz = static_cast<double>(rng.NextBelow(
                      static_cast<uint64_t>(n * k)))};
  catalog["B"] = {.rows = k, .cols = n,
                  .nnz = static_cast<double>(rng.NextBelow(
                      static_cast<uint64_t>(n * k)))};
  NaiveMetadataEstimator naive;
  MncEstimator mnc;
  for (const char* text :
       {"A %*% B", "t(A) %*% t(B)", "A %*% B %*% A", "rowSums(A %*% B)",
        "colSums(A) %*% B %*% A", "sum(A %*% B)", "(A + A) %*% B"}) {
    for (const SparsityEstimator* est :
         std::initializer_list<const SparsityEstimator*>{&naive, &mnc}) {
      auto e = EstimateExpression(*Parse(text), catalog, *est);
      ASSERT_TRUE(e.ok()) << text;
      EXPECT_LE(e->output.shape.nnz, e->output.shape.Cells() + 1e-9)
          << text << " under " << est->name();
      EXPECT_GE(e->cost, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorBoundsTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace hadad::cost
