// Property-based soundness oracle: generate random well-shaped LA
// expressions, optimize them, and check that (a) the rewriting never costs
// more than the original under γ and (b) original and rewriting evaluate to
// the same matrix on real data. This exercises Theorem 8.1 (soundness)
// end to end: every constraint in MMC must be a true LA identity or the
// oracle fails.

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "engine/evaluator.h"
#include "engine/workspace.h"
#include "la/expr.h"
#include "matrix/generate.h"
#include "pacb/optimizer.h"

namespace hadad {
namespace {

using la::Expr;
using la::ExprPtr;
using la::MatrixMeta;
using la::OpKind;

struct TypedExpr {
  ExprPtr expr;
  int64_t rows;
  int64_t cols;
};

// Grows a pool of well-shaped expressions over the workspace leaves by
// randomly applying operators whose shape constraints hold. Operators with
// numerical hazards on random data (inverse, determinant of products,
// division) are exercised by the targeted suites instead.
class RandomExprGen {
 public:
  RandomExprGen(Rng* rng, std::vector<TypedExpr> leaves)
      : rng_(rng), pool_(std::move(leaves)) {}

  ExprPtr Generate(int steps) {
    for (int i = 0; i < steps; ++i) Step();
    return pool_.back().expr;
  }

 private:
  const TypedExpr& Pick() {
    return pool_[rng_->NextBelow(pool_.size())];
  }

  void Push(OpKind kind, const TypedExpr& a, int64_t rows, int64_t cols) {
    pool_.push_back({Expr::Unary(kind, a.expr), rows, cols});
  }
  void Push(OpKind kind, const TypedExpr& a, const TypedExpr& b,
            int64_t rows, int64_t cols) {
    pool_.push_back({Expr::Binary(kind, a.expr, b.expr), rows, cols});
  }

  void Step() {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const TypedExpr& a = Pick();
      switch (rng_->NextBelow(8)) {
        case 0:  // Transpose.
          Push(OpKind::kTranspose, a, a.cols, a.rows);
          return;
        case 1:  // Row/col sums.
          if (rng_->NextBelow(2) == 0) {
            Push(OpKind::kRowSums, a, a.rows, 1);
          } else {
            Push(OpKind::kColSums, a, 1, a.cols);
          }
          return;
        case 2:  // Full aggregate.
          Push(OpKind::kSum, a, 1, 1);
          return;
        case 3:  // Reverse.
          Push(OpKind::kRev, a, a.rows, a.cols);
          return;
        case 4: {  // Addition (same-shape partner).
          const TypedExpr& b = Pick();
          if (a.rows == b.rows && a.cols == b.cols) {
            Push(OpKind::kAdd, a, b, a.rows, a.cols);
            return;
          }
          break;
        }
        case 5: {  // Product.
          const TypedExpr& b = Pick();
          if (a.cols == b.rows && a.rows * b.cols <= 4096) {
            Push(OpKind::kMultiply, a, b, a.rows, b.cols);
            return;
          }
          break;
        }
        case 6: {  // Hadamard.
          const TypedExpr& b = Pick();
          if (a.rows == b.rows && a.cols == b.cols) {
            Push(OpKind::kHadamard, a, b, a.rows, a.cols);
            return;
          }
          break;
        }
        case 7:  // Scalar multiplication.
          pool_.push_back({Expr::Binary(OpKind::kHadamard,
                                        Expr::Scalar(0.5), a.expr),
                           a.rows, a.cols});
          return;
      }
    }
  }

  Rng* rng_;
  std::vector<TypedExpr> pool_;
};

class OracleTest : public ::testing::TestWithParam<int> {};

TEST_P(OracleTest, RewritePreservesValueAndNeverCostsMore) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  engine::Workspace ws;
  ws.Put("A", matrix::RandomDense(rng, 24, 16, -1.0, 1.0));
  ws.Put("B", matrix::RandomDense(rng, 16, 24, -1.0, 1.0));
  ws.Put("S", matrix::RandomSparse(rng, 24, 16, 0.15, -1.0, 1.0));
  ws.Put("v", matrix::RandomDense(rng, 16, 1, -1.0, 1.0));
  std::vector<TypedExpr> leaves = {
      {Expr::MatrixRef("A"), 24, 16},
      {Expr::MatrixRef("B"), 16, 24},
      {Expr::MatrixRef("S"), 24, 16},
      {Expr::MatrixRef("v"), 16, 1},
  };
  pacb::Optimizer optimizer(ws.BuildMetaCatalog());
  optimizer.SetData(&ws.data());

  RandomExprGen gen(&rng, std::move(leaves));
  for (int trial = 0; trial < 4; ++trial) {
    ExprPtr expr = gen.Generate(4);
    SCOPED_TRACE(la::ToString(expr));
    auto r = optimizer.Optimize(expr);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_LE(r->best_cost, r->original_cost + 1e-6);
    auto original = engine::Execute(*expr, ws);
    ASSERT_TRUE(original.ok());
    auto rewritten = engine::Execute(*r->best, ws);
    ASSERT_TRUE(rewritten.ok()) << la::ToString(r->best);
    EXPECT_TRUE(original->ApproxEquals(*rewritten, 1e-6))
        << "rewrote to " << la::ToString(r->best);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace hadad
