#include "hybrid/queries.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "engine/evaluator.h"
#include "hybrid/dataset.h"
#include "la/parser.h"

namespace hadad::hybrid {
namespace {

DatasetConfig SmallConfig(BenchmarkKind kind) {
  DatasetConfig config;
  config.kind = kind;
  config.num_entities = 300;
  config.num_dims = 60;
  config.num_categories = 40;
  config.selection_fraction = 0.5;
  config.facts_per_entity = 2.0;
  return config;
}

TEST(DatasetTest, GeneratesConsistentTables) {
  Rng rng(1);
  Dataset ds = GenerateDataset(rng, SmallConfig(BenchmarkKind::kTwitter));
  EXPECT_EQ(ds.fact_table.num_rows(), 300);
  EXPECT_EQ(ds.dim_table.num_rows(), 60);
  EXPECT_EQ(ds.sparse_facts.num_rows(), 600);
  EXPECT_EQ(ds.fact_features.size(), 7u);
  EXPECT_EQ(ds.dim_features.size(), 5u);
}

TEST(DatasetTest, PreprocessBuildsJoinAndSparseMatrix) {
  Rng rng(2);
  Dataset ds = GenerateDataset(rng, SmallConfig(BenchmarkKind::kTwitter));
  auto pre = Preprocess(ds, /*push_level_filter=*/false, 4.0);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->m.rows(), 300);
  EXPECT_EQ(pre->m.cols(), 12);  // 7 fact + 5 dim features.
  EXPECT_EQ(pre->n.rows(), 300);
  EXPECT_EQ(pre->n.cols(), 40);
  EXPECT_TRUE(pre->n.is_sparse());
  // Roughly half the facts survive the keyword+country selection.
  EXPECT_GT(pre->n.Nnz(), 100);
  EXPECT_LT(pre->n.Nnz(), 500);
  // M really is [T | K U].
  auto ku = matrix::Multiply(pre->k, pre->u);
  auto m2 = matrix::Cbind(pre->t, *ku);
  EXPECT_TRUE(pre->m.ApproxEquals(*m2));
}

TEST(DatasetTest, FilterPushdownMatchesLaStageFilter) {
  // Selecting level <= 4 relationally (HADAD's combined rewriting) must
  // produce the same N as filtering in LA-land afterwards.
  Rng rng(3);
  Dataset ds = GenerateDataset(rng, SmallConfig(BenchmarkKind::kTwitter));
  auto unpushed = Preprocess(ds, false, 4.0);
  auto pushed = Preprocess(ds, true, 4.0);
  ASSERT_TRUE(unpushed.ok());
  ASSERT_TRUE(pushed.ok());
  matrix::Matrix la_filtered = FilterLevelAtMost(unpushed->n, 4.0);
  EXPECT_TRUE(pushed->n.ApproxEquals(la_filtered));
  EXPECT_LT(pushed->n.Nnz(), unpushed->n.Nnz());
}

TEST(DatasetTest, MimicVariantWorksIdentically) {
  Rng rng(4);
  Dataset ds = GenerateDataset(rng, SmallConfig(BenchmarkKind::kMimic));
  auto pre = Preprocess(ds, false, 2.0);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->m.cols(), 12);
  EXPECT_TRUE(pre->n.is_sparse());
}

class HybridQueriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(5);
    Dataset ds = GenerateDataset(rng, SmallConfig(BenchmarkKind::kTwitter));
    auto pre = Preprocess(ds, false, 4.0);
    ASSERT_TRUE(pre.ok());
    matrix::Matrix nf = FilterLevelAtMost(pre->n, 4.0);
    auto session = BuildHybridSession(rng, *pre, std::move(nf),
                                      pacb::EstimatorKind::kNaive);
    ASSERT_TRUE(session.ok());
    session_ = std::move(*session);
  }

  std::shared_ptr<api::Session> session_;
};

TEST_F(HybridQueriesTest, AllTenQueriesExecute) {
  for (const HybridQuery& q : MicroBenchmarkQueries()) {
    auto prepared = session_->Prepare(q.qla);
    ASSERT_TRUE(prepared.ok()) << q.id;
    auto out = prepared->ExecuteOriginal();
    EXPECT_TRUE(out.ok()) << q.id << ": " << out.status().ToString();
  }
}

TEST_F(HybridQueriesTest, ViewsMatchTheirSemantics) {
  // V3 = rowSums(M), V4 = colSums(M), V5 = C5 M.
  const engine::Workspace& ws = session_->workspace();
  auto m = ws.Get("M").value();
  EXPECT_TRUE(ws.Get("V3").value()->ApproxEquals(matrix::RowSums(*m), 1e-8));
  EXPECT_TRUE(ws.Get("V4").value()->ApproxEquals(matrix::ColSums(*m), 1e-8));
  auto c5m = matrix::Multiply(*ws.Get("C5").value(), *m);
  EXPECT_TRUE(ws.Get("V5").value()->ApproxEquals(*c5m, 1e-8));
}

TEST_F(HybridQueriesTest, RewritesPreserveValuesAndReachViews) {
  int used_views = 0;
  for (const HybridQuery& q : MicroBenchmarkQueries()) {
    auto prepared = session_->Prepare(q.qla);
    ASSERT_TRUE(prepared.ok()) << q.id << ": "
                               << prepared.status().ToString();
    auto original = prepared->ExecuteOriginal();
    ASSERT_TRUE(original.ok()) << q.id;
    auto rewritten = prepared->Execute();
    ASSERT_TRUE(rewritten.ok())
        << q.id << " -> " << la::ToString(prepared->plan());
    EXPECT_TRUE(original->ApproxEquals(*rewritten, 1e-6))
        << q.id << " -> " << la::ToString(prepared->plan());
    std::string best = la::ToString(prepared->plan());
    if (best.find("V3") != std::string::npos ||
        best.find("V4") != std::string::npos ||
        best.find("V5") != std::string::npos) {
      ++used_views;
    }
  }
  // The hybrid views must be reachable through Morpheus rules + LA
  // properties for at least a handful of the ten queries.
  EXPECT_GE(used_views, 3) << "views under-used";
}

TEST_F(HybridQueriesTest, Q1FindsTheDistributionRewrite) {
  auto prepared = session_->Prepare(MicroBenchmarkQueries()[0].qla);
  ASSERT_TRUE(prepared.ok());
  const pacb::RewriteResult& r = prepared->rewrite();
  EXPECT_TRUE(r.improved);
  EXPECT_LT(r.best_cost, r.original_cost);
}

}  // namespace
}  // namespace hadad::hybrid
