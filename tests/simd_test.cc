// SIMD kernel tier: dispatch policy + bit-identity of every vector tier
// against the scalar reference, at the microkernel level and through the
// blocked/fused kernels, across odd/tail shapes and thread counts. These
// tests run identically whichever tier the host resolves to — vector cases
// self-skip on hardware without the tier.

#include "matrix/simd.h"

#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "matrix/blocked_kernels.h"
#include "matrix/generate.h"
#include "matrix/matrix.h"

namespace hadad::matrix {
namespace {

// Row widths around every vector-width boundary: scalar-only, partial ymm,
// exact ymm, ymm+tail, exact zmm, zmm+tail, several full vectors + tail.
const std::vector<int64_t> kWidths = {1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 65, 100};

std::vector<double> RandomVec(Rng& rng, int64_t n, double lo = -2.0,
                              double hi = 2.0) {
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = rng.Uniform(lo, hi);
  return v;
}

bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool BitsEqual(const DenseMatrix& a, const DenseMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.rows() * a.cols()) *
                         sizeof(double)) == 0;
}

// Tiers at or below the host's capability, scalar always included.
std::vector<SimdTier> AvailableTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (DetectedCpuTier() >= SimdTier::kAvx2) tiers.push_back(SimdTier::kAvx2);
  if (DetectedCpuTier() >= SimdTier::kAvx512) {
    tiers.push_back(SimdTier::kAvx512);
  }
  return tiers;
}

// ---------------------------------------------------------------------------
// Dispatch policy.
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, ResolveTierForceScalarWins) {
  EXPECT_EQ(ResolveTier(SimdTier::kAvx512, "1", nullptr), SimdTier::kScalar);
  EXPECT_EQ(ResolveTier(SimdTier::kAvx512, "1", "avx512"), SimdTier::kScalar);
  EXPECT_EQ(ResolveTier(SimdTier::kAvx2, "1", "avx2"), SimdTier::kScalar);
  // Only the literal "1" forces; other values leave the tier request live.
  EXPECT_EQ(ResolveTier(SimdTier::kAvx2, "0", nullptr), SimdTier::kAvx2);
}

TEST(SimdDispatchTest, ResolveTierHonorsAndClampsRequests) {
  EXPECT_EQ(ResolveTier(SimdTier::kAvx512, nullptr, "scalar"),
            SimdTier::kScalar);
  EXPECT_EQ(ResolveTier(SimdTier::kAvx512, nullptr, "avx2"), SimdTier::kAvx2);
  EXPECT_EQ(ResolveTier(SimdTier::kAvx512, nullptr, "avx512"),
            SimdTier::kAvx512);
  // Requests above the CPU's capability clamp down, never up.
  EXPECT_EQ(ResolveTier(SimdTier::kAvx2, nullptr, "avx512"), SimdTier::kAvx2);
  EXPECT_EQ(ResolveTier(SimdTier::kScalar, nullptr, "avx2"),
            SimdTier::kScalar);
  // Unset / unknown names keep the detected tier.
  EXPECT_EQ(ResolveTier(SimdTier::kAvx2, nullptr, nullptr), SimdTier::kAvx2);
  EXPECT_EQ(ResolveTier(SimdTier::kAvx2, nullptr, "sse9"), SimdTier::kAvx2);
}

TEST(SimdDispatchTest, ActiveTierMatchesEnvironmentPolicy) {
  // Whatever environment this test process runs under (plain, forced-scalar
  // CI arm, explicit HADAD_SIMD_TIER), the latched tier must be exactly
  // what the pure policy function derives from it.
  const SimdTier expected =
      ResolveTier(DetectedCpuTier(), std::getenv("HADAD_FORCE_SCALAR"),
                  std::getenv("HADAD_SIMD_TIER"));
  EXPECT_EQ(ActiveTier(), expected);
  EXPECT_EQ(ActiveOps().tier, ActiveTier());
}

TEST(SimdDispatchTest, TierNamesAreStable) {
  EXPECT_STREQ(TierName(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(TierName(SimdTier::kAvx2), "avx2");
  EXPECT_STREQ(TierName(SimdTier::kAvx512), "avx512");
}

TEST(SimdDispatchTest, OpsForTierClampsToDetected) {
  for (SimdTier tier : AvailableTiers()) {
    EXPECT_EQ(OpsForTier(tier).tier, tier);
  }
  EXPECT_LE(OpsForTier(SimdTier::kAvx512).tier, DetectedCpuTier());
}

TEST(SimdDispatchTest, ScopedOverrideSwapsAndRestores) {
  const SimdTier before = ActiveTier();
  {
    ScopedTierOverride scalar(SimdTier::kScalar);
    EXPECT_EQ(ActiveTier(), SimdTier::kScalar);
    {
      ScopedTierOverride nested(DetectedCpuTier());
      EXPECT_EQ(ActiveTier(), DetectedCpuTier());
    }
    EXPECT_EQ(ActiveTier(), SimdTier::kScalar);
  }
  EXPECT_EQ(ActiveTier(), before);
}

// ---------------------------------------------------------------------------
// Microkernel bit-identity: every op of every available tier reproduces the
// scalar reference bit for bit on every tail shape.
// ---------------------------------------------------------------------------

TEST(SimdOpsTest, AllOpsBitIdenticalToScalarOnAllTails) {
  const SimdOps& ref = OpsForTier(SimdTier::kScalar);
  Rng rng(7);
  for (SimdTier tier : AvailableTiers()) {
    const SimdOps& ops = OpsForTier(tier);
    for (int64_t n : kWidths) {
      const std::vector<double> x = RandomVec(rng, n);
      const std::vector<double> y = RandomVec(rng, n);
      const double s = rng.Uniform(-3.0, 3.0);

      std::vector<double> want = RandomVec(rng, n);
      std::vector<double> got = want;  // axpy accumulates into both.
      ref.axpy(want.data(), x.data(), s, n);
      ops.axpy(got.data(), x.data(), s, n);
      EXPECT_TRUE(BitsEqual(want, got))
          << "axpy " << TierName(tier) << " n=" << n;

      std::vector<double> w2(static_cast<size_t>(n)), g2 = w2;
      ref.add_vv(w2.data(), x.data(), y.data(), n);
      ops.add_vv(g2.data(), x.data(), y.data(), n);
      EXPECT_TRUE(BitsEqual(w2, g2))
          << "add_vv " << TierName(tier) << " n=" << n;

      ref.mul_vv(w2.data(), x.data(), y.data(), n);
      ops.mul_vv(g2.data(), x.data(), y.data(), n);
      EXPECT_TRUE(BitsEqual(w2, g2))
          << "mul_vv " << TierName(tier) << " n=" << n;

      ref.add_vs(w2.data(), x.data(), s, n);
      ops.add_vs(g2.data(), x.data(), s, n);
      EXPECT_TRUE(BitsEqual(w2, g2))
          << "add_vs " << TierName(tier) << " n=" << n;

      ref.mul_vs(w2.data(), x.data(), s, n);
      ops.mul_vs(g2.data(), x.data(), s, n);
      EXPECT_TRUE(BitsEqual(w2, g2))
          << "mul_vs " << TierName(tier) << " n=" << n;
    }
  }
}

TEST(SimdOpsTest, ExactAliasingIsSupported) {
  Rng rng(11);
  for (SimdTier tier : AvailableTiers()) {
    const SimdOps& ops = OpsForTier(tier);
    for (int64_t n : kWidths) {
      const std::vector<double> x = RandomVec(rng, n);
      const std::vector<double> y = RandomVec(rng, n);

      // d aliases the first operand (the fused interpreter's in-place reuse).
      std::vector<double> a = x, want = x;
      ops.mul_vv(a.data(), a.data(), y.data(), n);
      OpsForTier(SimdTier::kScalar)
          .mul_vv(want.data(), want.data(), y.data(), n);
      EXPECT_TRUE(BitsEqual(want, a)) << "alias-lhs " << TierName(tier);

      // d aliases the second operand.
      std::vector<double> b = y, want2 = y;
      ops.add_vv(b.data(), x.data(), b.data(), n);
      OpsForTier(SimdTier::kScalar)
          .add_vv(want2.data(), x.data(), want2.data(), n);
      EXPECT_TRUE(BitsEqual(want2, b)) << "alias-rhs " << TierName(tier);

      // In-place scalar broadcast.
      std::vector<double> c = x, want3 = x;
      ops.add_vs(c.data(), c.data(), 1.5, n);
      OpsForTier(SimdTier::kScalar)
          .add_vs(want3.data(), want3.data(), 1.5, n);
      EXPECT_TRUE(BitsEqual(want3, c)) << "alias-vs " << TierName(tier);
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel-level bit-identity: the blocked/fused kernels produce identical
// bits under every tier, sequentially and at several thread counts.
// ---------------------------------------------------------------------------

class SimdKernelTest : public ::testing::Test {
 protected:
  // Runs `body` under every available tier and thread count, comparing the
  // result against the scalar sequential reference via `BitsEqual`.
  template <typename Fn>
  void CheckAllTiers(const char* what, Fn body) {
    matrix::RangeRunner seq;  // Null runner: body(0, n).
    DenseMatrix want = [&] {
      ScopedTierOverride scalar(SimdTier::kScalar);
      return body(seq);
    }();
    for (SimdTier tier : AvailableTiers()) {
      ScopedTierOverride active(tier);
      EXPECT_TRUE(BitsEqual(want, body(seq)))
          << what << " " << TierName(tier) << " sequential";
      for (int threads : {2, 4, 8}) {
        exec::ThreadPool pool(threads);
        matrix::RangeRunner runner =
            [&pool](int64_t n,
                    const std::function<void(int64_t, int64_t)>& chunk) {
              pool.ParallelFor(n, kRowGrain, chunk);
            };
        EXPECT_TRUE(BitsEqual(want, body(runner)))
            << what << " " << TierName(tier) << " threads=" << threads;
      }
    }
  }
};

TEST_F(SimdKernelTest, BlockedGemmKernelsAcrossOddShapes) {
  Rng rng(21);
  // Shapes straddle the k-tile and every vector boundary.
  struct Shape {
    int64_t n, k, m;
  };
  for (const Shape& s : {Shape{17, 33, 7}, Shape{64, 300, 65},
                         Shape{33, 64, 9}, Shape{5, 513, 16}}) {
    const DenseMatrix a = RandomDense(rng, s.n, s.k, -1.0, 1.0).dense();
    const DenseMatrix b = RandomDense(rng, s.k, s.m, -1.0, 1.0).dense();
    const DenseMatrix at = RandomDense(rng, s.k, s.n, -1.0, 1.0).dense();
    const SparseMatrix sp =
        RandomSparse(rng, s.n, s.k, 0.2, -1.0, 1.0).sparse();
    CheckAllTiers("gemm", [&](const RangeRunner& r) {
      return MultiplyDenseBlocked(a, b, r);
    });
    CheckAllTiers("gemm_tn", [&](const RangeRunner& r) {
      return MultiplyTransposedDenseBlocked(at, b, r);
    });
    CheckAllTiers("spmm", [&](const RangeRunner& r) {
      return MultiplySparseDenseParallel(sp, b, r);
    });
    CheckAllTiers("gemm_rowsums", [&](const RangeRunner& r) {
      return GemmRowSums(a, b, r);
    });
    CheckAllTiers("gemm_colsums", [&](const RangeRunner& r) {
      return GemmColSums(a, b, r);
    });
    CheckAllTiers("gemm_colmeans", [&](const RangeRunner& r) {
      return GemmColMeans(a, b, r);
    });
    // Scalar-valued reductions: wrap in a 1x1 for the shared checker.
    CheckAllTiers("gemm_sum", [&](const RangeRunner& r) {
      return DenseMatrix(1, 1, {GemmSum(a, b, r)});
    });
    CheckAllTiers("gemm_mean", [&](const RangeRunner& r) {
      return DenseMatrix(1, 1, {GemmMean(a, b, r)});
    });
  }
}

TEST_F(SimdKernelTest, ReducingEpiloguesMatchUnfusedAggregates) {
  // The fused mean/colMeans epilogues must equal aggregate-over-product
  // bit for bit — same contract the sum/rowSums/colSums kernels honor.
  Rng rng(23);
  const DenseMatrix a = RandomDense(rng, 47, 65, -1.0, 1.0).dense();
  const DenseMatrix b = RandomDense(rng, 65, 33, -1.0, 1.0).dense();
  const Matrix product = Matrix(MultiplyDenseBlocked(a, b));
  EXPECT_EQ(GemmSum(a, b), Sum(product));
  EXPECT_EQ(GemmMean(a, b), Mean(product));
  EXPECT_TRUE(BitsEqual(ColMeans(product).dense(), GemmColMeans(a, b)));
  EXPECT_TRUE(BitsEqual(ColSums(product).dense(), GemmColSums(a, b)));
  EXPECT_TRUE(BitsEqual(RowSums(product).dense(), GemmRowSums(a, b)));
}

TEST_F(SimdKernelTest, FusedElementwiseEveryOpcodeAcrossTiers) {
  // One program covering every opcode and operand mix: vec*vec, vec+scalar
  // input, vec*const, const*const (scalar-scalar fold), vec+vec.
  // Postfix for ((A .* B) + s) * 2 + (A + 3*4).
  FusedElementwiseProgram program;
  program.steps = {
      {FusedStep::Code::kPushInput, 0, 0.0},  // A
      {FusedStep::Code::kPushInput, 1, 0.0},  // B
      {FusedStep::Code::kMul, 0, 0.0},        // vec * vec
      {FusedStep::Code::kPushInput, 2, 0.0},  // broadcast scalar input
      {FusedStep::Code::kAdd, 0, 0.0},        // vec + scalar
      {FusedStep::Code::kPushConst, 0, 2.0},
      {FusedStep::Code::kMul, 0, 0.0},        // vec * const
      {FusedStep::Code::kPushInput, 0, 0.0},  // A again
      {FusedStep::Code::kPushConst, 0, 3.0},
      {FusedStep::Code::kPushConst, 0, 4.0},
      {FusedStep::Code::kMul, 0, 0.0},        // const * const (scalar fold)
      {FusedStep::Code::kAdd, 0, 0.0},        // vec + folded scalar
      {FusedStep::Code::kAdd, 0, 0.0},        // vec + vec
  };
  program.max_stack = 4;

  Rng rng(29);
  for (int64_t cols : kWidths) {
    const DenseMatrix a = RandomDense(rng, 37, cols, -1.0, 1.0).dense();
    const DenseMatrix b = RandomDense(rng, 37, cols, -1.0, 1.0).dense();
    std::vector<FusedInput> inputs(3);
    inputs[0].dense = &a;
    inputs[1].dense = &b;
    inputs[2].scalar = 0.75;
    CheckAllTiers("fused_elementwise", [&](const RangeRunner& r) {
      return EvalFusedElementwise(program, inputs, 37, cols, r);
    });
  }
}

}  // namespace
}  // namespace hadad::matrix
