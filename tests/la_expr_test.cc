#include "la/expr.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "la/parser.h"

namespace hadad::la {
namespace {

MetaCatalog TestCatalog() {
  MetaCatalog catalog;
  catalog["M"] = {.rows = 50, .cols = 10, .nnz = 500};
  catalog["N"] = {.rows = 10, .cols = 50, .nnz = 500};
  catalog["C"] = {.rows = 20, .cols = 20, .nnz = 400};
  catalog["D"] = {.rows = 20, .cols = 20, .nnz = 400};
  catalog["v"] = {.rows = 10, .cols = 1, .nnz = 10};
  return catalog;
}

ExprPtr Parse(const std::string& s) {
  auto r = ParseExpression(s);
  HADAD_CHECK_MSG(r.ok(), s.c_str());
  return r.value();
}

TEST(ParserTest, PrecedenceMirrorsR) {
  // %*% binds tighter than *, which binds tighter than +.
  ExprPtr e = Parse("A + B * C %*% D");
  EXPECT_EQ(e->kind(), OpKind::kAdd);
  EXPECT_EQ(e->child(1)->kind(), OpKind::kHadamard);
  EXPECT_EQ(e->child(1)->child(1)->kind(), OpKind::kMultiply);
}

TEST(ParserTest, SubtractionDesugarsToScaledAdd) {
  ExprPtr e = Parse("A - B");
  EXPECT_EQ(e->kind(), OpKind::kAdd);
  const Expr& rhs = *e->child(1);
  EXPECT_EQ(rhs.kind(), OpKind::kHadamard);
  EXPECT_EQ(rhs.child(0)->kind(), OpKind::kScalarConst);
  EXPECT_DOUBLE_EQ(rhs.child(0)->scalar_value(), -1.0);
}

TEST(ParserTest, FunctionsAndNesting) {
  ExprPtr e = Parse("inv(t(X) %*% X) %*% (t(X) %*% y)");
  EXPECT_EQ(e->kind(), OpKind::kMultiply);
  EXPECT_EQ(e->child(0)->kind(), OpKind::kInverse);
  EXPECT_EQ(e->child(0)->child(0)->kind(), OpKind::kMultiply);
  EXPECT_EQ(e->child(0)->child(0)->child(0)->kind(), OpKind::kTranspose);
}

TEST(ParserTest, BinaryFunctions) {
  ExprPtr e = Parse("dsum(A, B)");
  EXPECT_EQ(e->kind(), OpKind::kDirectSum);
  EXPECT_EQ(Parse("kron(A, B)")->kind(), OpKind::kKronecker);
  EXPECT_EQ(Parse("cbind(A, B)")->kind(), OpKind::kCbind);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseExpression("A +").ok());
  EXPECT_FALSE(ParseExpression("foo(A)").ok());
  EXPECT_FALSE(ParseExpression("t(A, B)").ok());
  EXPECT_FALSE(ParseExpression("dsum(A)").ok());
  EXPECT_FALSE(ParseExpression("(A").ok());
  EXPECT_FALSE(ParseExpression("A B").ok());
  EXPECT_FALSE(ParseExpression("A % B").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  for (const char* text : {
           "t(M %*% N)",
           "inv(C) %*% inv(D)",
           "(C + D) %*% v",
           "sum(t(colSums(M)) * rowSums(N))",
           "trace(C %*% D) + trace(D)",
           "M * (t(N) / (M %*% N %*% t(N)))",
           "colSums(M) %*% N",
           "2.5 * M",
       }) {
    ExprPtr once = Parse(text);
    ExprPtr twice = Parse(ToString(once));
    EXPECT_TRUE(once->Equals(*twice)) << text << " vs " << ToString(once);
  }
}

TEST(InferShapeTest, MatmulShapes) {
  MetaCatalog catalog = TestCatalog();
  auto shape = InferShape(*Parse("M %*% N"), catalog);
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->rows, 50);
  EXPECT_EQ(shape->cols, 50);
  // Inner mismatch: M (50x10) times M.
  EXPECT_FALSE(InferShape(*Parse("M %*% M"), catalog).ok());
}

TEST(InferShapeTest, ScalarsBroadcast) {
  MetaCatalog catalog = TestCatalog();
  auto shape = InferShape(*Parse("3 * M"), catalog);
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->rows, 50);
  auto s2 = InferShape(*Parse("det(C) * det(D)"), catalog);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->rows, 1);
  EXPECT_EQ(s2->cols, 1);
}

TEST(InferShapeTest, SquareOnlyOperators) {
  MetaCatalog catalog = TestCatalog();
  EXPECT_TRUE(InferShape(*Parse("inv(C)"), catalog).ok());
  EXPECT_FALSE(InferShape(*Parse("inv(M)"), catalog).ok());
  EXPECT_FALSE(InferShape(*Parse("det(M)"), catalog).ok());
  EXPECT_FALSE(InferShape(*Parse("trace(M)"), catalog).ok());
  EXPECT_TRUE(InferShape(*Parse("exp(C)"), catalog).ok());
}

TEST(InferShapeTest, Aggregations) {
  MetaCatalog catalog = TestCatalog();
  auto rs = InferShape(*Parse("rowSums(M)"), catalog);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows, 50);
  EXPECT_EQ(rs->cols, 1);
  auto cs = InferShape(*Parse("colSums(M)"), catalog);
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->rows, 1);
  EXPECT_EQ(cs->cols, 10);
  auto s = InferShape(*Parse("sum(M)"), catalog);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->rows, 1);
}

TEST(InferShapeTest, DiagBothDirections) {
  MetaCatalog catalog = TestCatalog();
  auto d1 = InferShape(*Parse("diag(v)"), catalog);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1->rows, 10);
  EXPECT_EQ(d1->cols, 10);
  auto d2 = InferShape(*Parse("diag(C)"), catalog);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->cols, 1);
}

TEST(InferShapeTest, DecompositionFactorsCarryTypeFlags) {
  MetaCatalog catalog = TestCatalog();
  auto l = InferShape(*Parse("cho(C)"), catalog);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(l->lower_triangular);
  auto q = InferShape(*Parse("qr_q(C)"), catalog);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->orthogonal);
  auto r = InferShape(*Parse("qr_r(C)"), catalog);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->upper_triangular);
}

TEST(InferShapeTest, UnknownMatrixIsNotFound) {
  MetaCatalog catalog = TestCatalog();
  auto r = InferShape(*Parse("Zz"), catalog);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ExprTest, TreeSizeAndEquality) {
  ExprPtr a = Parse("t(M) %*% N + M");
  ExprPtr b = Parse("t(M) %*% N + M");
  ExprPtr c = Parse("t(M) %*% N + N");
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_EQ(Parse("M")->TreeSize(), 1);
  EXPECT_EQ(Parse("t(M)")->TreeSize(), 2);
  EXPECT_EQ(Parse("M %*% N")->TreeSize(), 3);
}

}  // namespace
}  // namespace hadad::la
