#include "pacb/optimizer.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "la/parser.h"

namespace hadad::pacb {
namespace {

// The paper's dense pipeline environment, scaled down: M is n x k, N is
// k x n (Syn1/Syn2 shapes), C and D are square dense, v/y vectors.
la::MetaCatalog DenseCatalog(int64_t n = 5000, int64_t k = 100) {
  la::MetaCatalog c;
  auto dense = [](int64_t r, int64_t cc) {
    return la::MatrixMeta{.rows = r, .cols = cc,
                          .nnz = static_cast<double>(r * cc)};
  };
  c["M"] = dense(n, k);
  c["N"] = dense(k, n);
  c["A"] = dense(n, k);
  c["B"] = dense(n, k);
  c["C"] = dense(600, 600);
  c["D"] = dense(600, 600);
  c["v1"] = dense(k, 1);  // Syn7 shape: k x 1.
  c["y"] = dense(n, 1);
  return c;
}

std::string BestOf(const Optimizer& opt, const std::string& pipeline) {
  auto r = opt.OptimizeText(pipeline);
  HADAD_CHECK_MSG(r.ok(), pipeline.c_str());
  return la::ToString(r->best);
}

TEST(OptimizerTest, P1_1TransposeOfProduct) {
  Optimizer opt(DenseCatalog());
  auto r = opt.OptimizeText("t(M %*% N)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "t(N) %*% t(M)");
  EXPECT_LT(r->best_cost, r->original_cost);
  EXPECT_TRUE(r->improved);
}

TEST(OptimizerTest, P1_15ChainReassociation) {
  // (M N) M -> M (N M): Example 7.2.
  Optimizer opt(DenseCatalog());
  auto r = opt.OptimizeText("(M %*% N) %*% M");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "M %*% (N %*% M)");
  // γ drops from n^2 to k^2.
  EXPECT_DOUBLE_EQ(r->original_cost, 5000.0 * 5000.0);
  EXPECT_DOUBLE_EQ(r->best_cost, 100.0 * 100.0);
}

TEST(OptimizerTest, P1_3InverseOfProduct) {
  // inv(C) inv(D) -> inv(D C): one inverse instead of two.
  Optimizer opt(DenseCatalog());
  auto r = opt.OptimizeText("inv(C) %*% inv(D)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "inv(D %*% C)");
}

TEST(OptimizerTest, P1_5DoubleInverse) {
  Optimizer opt(DenseCatalog());
  auto r = opt.OptimizeText("inv(inv(D))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "D");
  EXPECT_DOUBLE_EQ(r->best_cost, 0.0);
}

TEST(OptimizerTest, P1_7DoubleTranspose) {
  Optimizer opt(DenseCatalog());
  EXPECT_EQ(BestOf(opt, "t(t(A))"), "A");
}

TEST(OptimizerTest, P1_4DistributeVectorMultiplication) {
  // (A + B) v1 vs A v1 + B v1: equal-cost on dense inputs, but with A
  // sparse the distribution avoids densifying A + B.
  la::MetaCatalog catalog = DenseCatalog();
  catalog["A"].nnz = 500;  // Ultra sparse A.
  Optimizer opt(catalog);
  auto r = opt.OptimizeText("(A + B) %*% v1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "A %*% v1 + B %*% v1");
}

TEST(OptimizerTest, P1_13SumOfProduct) {
  // sum(M N) -> sum(t(colSums(M)) * rowSums(N)) (SystemML rule (i)).
  Optimizer opt(DenseCatalog());
  auto r = opt.OptimizeText("sum(M %*% N)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "sum(t(colSums(M)) * rowSums(N))");
  EXPECT_LT(r->best_cost, r->original_cost / 100);
}

TEST(OptimizerTest, P1_14SumColSumsOfTransposedProduct) {
  // sum(colSums(t(N) %*% t(M))) needs (MN)^T = N^T M^T *and* the StatAgg
  // rules together (the interplay SystemML alone misses, §9.1.1).
  Optimizer opt(DenseCatalog());
  auto r = opt.OptimizeText("sum(colSums(t(N) %*% t(M)))");
  ASSERT_TRUE(r.ok());
  // Hadamard commutes, so either operand order is the paper's rewriting.
  std::string best = la::ToString(r->best);
  EXPECT_TRUE(best == "sum(t(colSums(M)) * rowSums(N))" ||
              best == "sum(rowSums(N) * t(colSums(M)))")
      << best;
  EXPECT_LT(r->best_cost, r->original_cost / 100);
}

TEST(OptimizerTest, P1_8ScalarFactoring) {
  // s1 A + s2 A -> (s1 + s2) A.
  Optimizer opt(DenseCatalog());
  auto r = opt.OptimizeText("2 * A + 3 * A");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "(2 + 3) * A");
}

TEST(OptimizerTest, P2_1TraceOfSum) {
  Optimizer opt(DenseCatalog());
  EXPECT_EQ(BestOf(opt, "trace(C + D)"), "trace(C) + trace(D)");
}

TEST(OptimizerTest, P2_7InverseCancellation) {
  // D D^{-1} C -> C.
  Optimizer opt(DenseCatalog());
  EXPECT_EQ(BestOf(opt, "(D %*% inv(D)) %*% C"), "C");
}

TEST(OptimizerTest, P1_9DetOfTranspose) {
  Optimizer opt(DenseCatalog());
  EXPECT_EQ(BestOf(opt, "det(t(D))"), "det(D)");
}

TEST(OptimizerTest, P1_10RowSumsOfTranspose) {
  Optimizer opt(DenseCatalog());
  EXPECT_EQ(BestOf(opt, "rowSums(t(A))"), "t(colSums(A))");
}

TEST(OptimizerTest, P2_11SumOfAdd) {
  la::MetaCatalog catalog = DenseCatalog();
  catalog["A"].nnz = 500;
  Optimizer opt(catalog);
  EXPECT_EQ(BestOf(opt, "sum(A + B)"), "sum(A) + sum(B)");
}

// --- Views (§6.3, Figure 3) ---------------------------------------------

TEST(OptimizerTest, Figure3ViewAnswersQp) {
  // V = t(N) + inv(t(M)) answers Q_p = t(inv(M) + N) outright (RW_0).
  la::MetaCatalog catalog;
  catalog["M"] = {.rows = 300, .cols = 300, .nnz = 90000};
  catalog["N"] = {.rows = 300, .cols = 300, .nnz = 90000};
  Optimizer opt(catalog);
  ASSERT_TRUE(opt.AddViewText("V", "t(N) + inv(t(M))").ok());
  auto r = opt.OptimizeText("t(inv(M) + N)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "V");
  EXPECT_DOUBLE_EQ(r->best_cost, 0.0);
}

TEST(OptimizerTest, P2_21OlsWithInverseView) {
  // OLS (D^T D)^{-1} (D^T v1) with V1 = D^{-1} rewrites to
  // V1 (V1^T (D^T v1)) — the 150x MLlib speedup of §2.
  la::MetaCatalog catalog;
  catalog["D"] = {.rows = 800, .cols = 800, .nnz = 640000};
  catalog["v1"] = {.rows = 800, .cols = 1, .nnz = 800};
  Optimizer opt(catalog);
  ASSERT_TRUE(opt.AddViewText("V1", "inv(D)").ok());
  auto r = opt.OptimizeText("inv(t(D) %*% D) %*% (t(D) %*% v1)");
  ASSERT_TRUE(r.ok());
  // The best plan must use the view and keep every intermediate a vector.
  std::string best = la::ToString(r->best);
  EXPECT_NE(best.find("V1"), std::string::npos) << best;
  EXPECT_EQ(best.find("inv("), std::string::npos) << best;
  EXPECT_LE(r->best_cost, 3 * 800.0);
  EXPECT_LT(r->best_cost, r->original_cost / 100);
}

TEST(OptimizerTest, P2_14ProductView) {
  // ((M N) M) N with V4 = N M: associativity exposes M (N M) N = M V4 N.
  la::MetaCatalog catalog = DenseCatalog();
  Optimizer opt(catalog);
  ASSERT_TRUE(opt.AddViewText("V4", "N %*% M").ok());
  auto r = opt.OptimizeText("((M %*% N) %*% M) %*% N");
  ASSERT_TRUE(r.ok());
  std::string best = la::ToString(r->best);
  EXPECT_NE(best.find("V4"), std::string::npos) << best;
  EXPECT_LT(r->best_cost, r->original_cost);
}

TEST(OptimizerTest, Example62CholeskyView) {
  // V = N + L L^T with L = cho(M) answers E = M + N thanks to I_cho and
  // commutativity (Example 6.2).
  la::MetaCatalog catalog;
  catalog["M"] = {.rows = 200, .cols = 200, .nnz = 40000,
                  .symmetric_pd = true};
  catalog["N"] = {.rows = 200, .cols = 200, .nnz = 40000};
  Optimizer opt(catalog);
  ASSERT_TRUE(opt.AddViewText("V", "N + cho(M) %*% t(cho(M))").ok());
  auto r = opt.OptimizeText("M + N");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "V");
}

// --- Pruning (§7.3) --------------------------------------------------------

TEST(OptimizerTest, PruningSkipsExpensiveFragments) {
  OptimizerOptions with;
  OptimizerOptions without;
  without.prune = false;
  Optimizer pruned(DenseCatalog(), with);
  Optimizer unpruned(DenseCatalog(), without);
  auto r1 = pruned.OptimizeText("M %*% (N %*% M)");
  auto r2 = unpruned.OptimizeText("M %*% (N %*% M)");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Both keep the already-optimal order...
  EXPECT_EQ(la::ToString(r1->best), "M %*% (N %*% M)");
  EXPECT_EQ(la::ToString(r2->best), "M %*% (N %*% M)");
  // ...but pruning rejects chase steps (Example 7.2's (MN)M atoms).
  EXPECT_GT(r1->chase_stats.pruned_applications, 0);
  EXPECT_LE(r1->chase_stats.facts_added, r2->chase_stats.facts_added);
}

TEST(OptimizerTest, AlreadyOptimalPipelinesComeBackUnchanged) {
  Optimizer opt(DenseCatalog());
  for (const char* text : {"M %*% (N %*% M)", "t(N) %*% t(M)", "sum(A)",
                           "rowSums(A)"}) {
    auto r = opt.OptimizeText(text);
    ASSERT_TRUE(r.ok()) << text;
    EXPECT_EQ(la::ToString(r->best), text);
    EXPECT_FALSE(r->improved) << text;
  }
}

// --- Alternatives enumeration (Figure 4) -----------------------------------

TEST(OptimizerTest, EnumeratesEquivalentAlternatives) {
  // Figure 4 lists *all* equivalent rewritings of Q_p; only the naive
  // algorithm (pruning off) keeps the non-minimal ones around.
  OptimizerOptions options;
  options.prune = false;
  Optimizer opt(DenseCatalog(), options);
  auto r = opt.OptimizeText("t(inv(D) + C)");
  ASSERT_TRUE(r.ok());
  // Figure 4 lists rewrites like t(C) + t(inv(D)), inv(t(D)) + t(C), ...
  EXPECT_GE(r->rewrites.size(), 3u);
  // All enumerated rewrites are valid expressions over the catalog.
  for (const la::ExprPtr& rw : r->rewrites) {
    EXPECT_TRUE(la::InferShape(*rw, opt.catalog()).ok())
        << la::ToString(rw);
  }
}

// --- Error handling -----------------------------------------------------------

TEST(OptimizerTest, UnknownMatrixIsAnError) {
  Optimizer opt(DenseCatalog());
  EXPECT_FALSE(opt.OptimizeText("Zz %*% M").ok());
}

TEST(OptimizerTest, DimensionMismatchIsAnError) {
  Optimizer opt(DenseCatalog());
  EXPECT_FALSE(opt.OptimizeText("M %*% M").ok());
}

TEST(OptimizerTest, DuplicateViewNameRejected) {
  Optimizer opt(DenseCatalog());
  ASSERT_TRUE(opt.AddViewText("W", "t(M)").ok());
  EXPECT_FALSE(opt.AddViewText("W", "t(N)").ok());
  EXPECT_FALSE(opt.AddViewText("M", "t(N)").ok());  // Clashes with a base.
}

TEST(OptimizerTest, RewriteTimeIsReported) {
  Optimizer opt(DenseCatalog());
  auto r = opt.OptimizeText("t(M %*% N)");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->optimize_seconds, 0.0);
  EXPECT_LT(r->optimize_seconds, 30.0);
}

// MNC estimator flows through the optimizer.
TEST(OptimizerTest, MncEstimatorSelectsSparseAwarePlan) {
  la::MetaCatalog catalog = DenseCatalog();
  catalog["A"].nnz = 500;
  OptimizerOptions options;
  options.estimator = EstimatorKind::kMnc;
  Optimizer opt(catalog, options);
  auto r = opt.OptimizeText("(A + B) %*% v1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "A %*% v1 + B %*% v1");
}

}  // namespace
}  // namespace hadad::pacb
