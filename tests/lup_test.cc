// Pivoted LU (LUP) through the whole stack: kernels, evaluator factors,
// constraint knowledge (Table 10's P M = L U), and rewriting.

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "engine/evaluator.h"
#include "engine/workspace.h"
#include "la/parser.h"
#include "matrix/generate.h"
#include "pacb/optimizer.h"

namespace hadad {
namespace {

la::ExprPtr Parse(const std::string& s) {
  auto r = la::ParseExpression(s);
  HADAD_CHECK_MSG(r.ok(), s.c_str());
  return r.value();
}

TEST(LupTest, ParserAndShapes) {
  la::MetaCatalog catalog;
  catalog["C"] = {.rows = 20, .cols = 20, .nnz = 400};
  auto l = la::InferShape(*Parse("lup_l(C)"), catalog);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(l->lower_triangular);
  auto u = la::InferShape(*Parse("lup_u(C)"), catalog);
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(u->upper_triangular);
  auto p = la::InferShape(*Parse("lup_p(C)"), catalog);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->permutation);
  EXPECT_DOUBLE_EQ(p->nnz, 20.0);
  // Non-square rejected.
  catalog["R"] = {.rows = 4, .cols = 5, .nnz = 20};
  EXPECT_FALSE(la::InferShape(*Parse("lup_l(R)"), catalog).ok());
}

TEST(LupTest, EvaluatorFactorsSatisfyPmEqualsLu) {
  Rng rng(11);
  engine::Workspace ws;
  ws.Put("C", matrix::RandomDense(rng, 12, 12, -1.0, 1.0));
  auto pm = engine::Execute(*Parse("lup_p(C) %*% C"), ws);
  auto lu = engine::Execute(*Parse("lup_l(C) %*% lup_u(C)"), ws);
  ASSERT_TRUE(pm.ok());
  ASSERT_TRUE(lu.ok());
  EXPECT_TRUE(pm->ApproxEquals(*lu, 1e-9));
  // The permutation factor is orthogonal: P^T P = I.
  auto ptp = engine::Execute(*Parse("t(lup_p(C)) %*% lup_p(C)"), ws);
  ASSERT_TRUE(ptp.ok());
  EXPECT_TRUE(ptp->ApproxEquals(matrix::Matrix::Identity(12), 1e-12));
}

TEST(LupTest, RewriterKnowsPmEqualsLu) {
  // lup_l(C) %*% lup_u(C) = lup_p(C) %*% C by the lup-def constraint; the
  // latter is cheaper to decode (smaller tree at equal cost), so extraction
  // should surface it.
  la::MetaCatalog catalog;
  catalog["C"] = {.rows = 64, .cols = 64, .nnz = 4096};
  pacb::Optimizer opt(catalog);
  auto r = opt.OptimizeText("lup_l(C) %*% lup_u(C)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "lup_p(C) %*% C");
  // Semantics on data.
  Rng rng(12);
  engine::Workspace ws;
  ws.Put("C", matrix::RandomDense(rng, 64, 64, -1.0, 1.0));
  auto a = engine::Execute(*Parse("lup_l(C) %*% lup_u(C)"), ws);
  auto b = engine::Execute(*r->best, ws);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->ApproxEquals(*b, 1e-8));
}

TEST(LupTest, LowerTriangularFixpoint) {
  // For a lower-triangular input, LUP(L) = [L, I, I] (Table 10): the U
  // factor collapses to identity, so lup_l(L) rewrites to L itself.
  la::MetaCatalog catalog;
  catalog["L"] = {.rows = 32, .cols = 32, .nnz = 528,
                  .lower_triangular = true};
  pacb::Optimizer opt(catalog);
  auto r = opt.OptimizeText("lup_l(L)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "L");
}

TEST(LupTest, ViewOverLupFactor) {
  // A view storing the pivoted factors can answer factor queries.
  la::MetaCatalog catalog;
  catalog["C"] = {.rows = 48, .cols = 48, .nnz = 2304};
  pacb::Optimizer opt(catalog);
  ASSERT_TRUE(opt.AddViewText("VL", "lup_l(C)").ok());
  auto r = opt.OptimizeText("lup_l(C)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "VL");
}

}  // namespace
}  // namespace hadad
