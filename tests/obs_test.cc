// Tests for the observability subsystem (src/obs/): the span recorder and
// its Chrome-trace export, the metrics registry, EXPLAIN ANALYZE rendering,
// and the end-to-end instrumentation threaded through api::Session.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "engine/evaluator.h"
#include "engine/workspace.h"
#include "la/parser.h"
#include "matrix/generate.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hadad::obs {
namespace {

// ---------------------------------------------------------------------------
// Allocation counting for the disabled-mode zero-allocation test. The
// global operator new/delete overrides count every heap allocation made by
// this binary; tests snapshot the counter around the code under test.
// ---------------------------------------------------------------------------

std::atomic<int64_t> g_allocations{0};

}  // namespace
}  // namespace hadad::obs

void* operator new(std::size_t size) {
  hadad::obs::g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace hadad::obs {
namespace {

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, RecordsHierarchy) {
  TraceRecorder rec;
  const SpanId root = rec.StartSpan("Run", "session");
  ASSERT_NE(root, kNoSpan);
  const SpanId child = rec.StartSpan("dag_compile", "compile", root);
  rec.Annotate(child, "plan_nodes", int64_t{7});
  rec.Annotate(child, "note", std::string("hello"));
  rec.Annotate(child, "seconds", 0.25);
  rec.EndSpan(child);
  rec.EndSpan(root);

  const std::vector<Span> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "Run");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_GE(spans[1].duration_us, 0);
  ASSERT_EQ(spans[1].attrs.size(), 3u);
  EXPECT_EQ(spans[1].attrs[0].first, "plan_nodes");
  EXPECT_EQ(spans[1].attrs[0].second, "7");
}

TEST(TraceRecorderTest, DisabledRecorderReturnsNoSpan) {
  TraceOptions off;
  off.enabled = false;
  TraceRecorder rec(off);
  EXPECT_EQ(rec.StartSpan("x", "session"), kNoSpan);
  rec.EndSpan(kNoSpan);  // Must tolerate the sentinel.
  EXPECT_EQ(rec.span_count(), 0);
}

TEST(TraceRecorderTest, MaxSpansCapCountsDropped) {
  TraceOptions opts;
  opts.max_spans = 2;
  TraceRecorder rec(opts);
  EXPECT_NE(rec.StartSpan("a", "session"), kNoSpan);
  EXPECT_NE(rec.StartSpan("b", "session"), kNoSpan);
  EXPECT_EQ(rec.StartSpan("c", "session"), kNoSpan);
  EXPECT_EQ(rec.span_count(), 2);
  EXPECT_EQ(rec.dropped(), 1);
}

TEST(TraceRecorderTest, RingModeRetainsNewestAndCountsEvictions) {
  TraceOptions opts;
  opts.ring_capacity = 4;
  TraceRecorder rec(opts);
  for (int i = 0; i < 10; ++i) {
    const SpanId id = rec.StartSpan("s" + std::to_string(i), "session");
    EXPECT_EQ(id, static_cast<SpanId>(i));  // Never refused, ids monotone.
    rec.EndSpan(id);
  }
  EXPECT_EQ(rec.span_count(), 4);
  EXPECT_EQ(rec.dropped(), 6);  // Evictions preserve the "lost" meaning.
  const std::vector<Span> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].id, static_cast<SpanId>(6 + i));  // Newest, id order.
    EXPECT_EQ(spans[i].name, "s" + std::to_string(6 + i));
    EXPECT_GE(spans[i].duration_us, 0);
  }
}

TEST(TraceRecorderTest, RingModeMutationOfEvictedSpanIsNoOp) {
  TraceOptions opts;
  opts.ring_capacity = 2;
  TraceRecorder rec(opts);
  const SpanId victim = rec.StartSpan("victim", "session");
  for (int i = 0; i < 4; ++i) {
    rec.EndSpan(rec.StartSpan("filler", "session"));
  }
  // `victim`'s slot now belongs to a newer generation; closing or
  // annotating it must not corrupt the occupant.
  rec.EndSpan(victim);
  rec.Annotate(victim, "key", std::string("value"));
  for (const Span& s : rec.Snapshot()) {
    EXPECT_EQ(s.name, "filler");
    EXPECT_TRUE(s.attrs.empty());
  }
  EXPECT_EQ(rec.dropped(), 3);  // 5 started, 2 retained.
}

TEST(TraceRecorderTest, RingModeChromeTraceExportsRetainedSpans) {
  TraceOptions opts;
  opts.ring_capacity = 3;
  TraceRecorder rec(opts);
  for (int i = 0; i < 8; ++i) {
    rec.EndSpan(rec.StartSpan("k" + std::to_string(i), "kernel"));
  }
  std::ostringstream out;
  rec.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("\"k0\""), std::string::npos);  // Evicted.
  EXPECT_NE(json.find("\"k7\""), std::string::npos);  // Newest retained.
}

// Concurrent span production from many threads: exercised under TSan by the
// dedicated CI job; the assertions check ids stay unique and dense.
TEST(TraceRecorderTest, ConcurrentSpanNesting) {
  TraceRecorder rec;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan outer(&rec, "outer", "session");
        ScopedSpan inner(&rec, "inner", "kernel", outer.id());
        inner.Annotate("i", static_cast<int64_t>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const std::vector<Span> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(),
            static_cast<size_t>(kThreads * kSpansPerThread * 2));
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, static_cast<SpanId>(i));  // Dense start-order ids.
    EXPECT_GE(spans[i].duration_us, 0) << "span left open";
    if (spans[i].name == "inner") {
      ASSERT_NE(spans[i].parent, kNoSpan);
      EXPECT_EQ(spans[spans[i].parent].name, "outer");
    }
  }
}

TEST(TraceRecorderTest, ChromeTraceJsonShape) {
  TraceRecorder rec;
  const SpanId root = rec.StartSpan("Run", "session");
  rec.Annotate(root, "query", std::string("M %*% N"));
  const SpanId child = rec.StartSpan("plan_derivation", "plan", root);
  rec.EndSpan(child);
  rec.EndSpan(root);

  std::ostringstream out;
  rec.WriteChromeTrace(out);
  const std::string json = out.str();

  // Structural checks; full JSON validation lives in scripts/check_trace.py.
  EXPECT_EQ(json.find("{\"displayTimeUnit\": \"ms\""), 0u);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"Run\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"query\": \"M %*% N\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
  // Balanced braces/brackets (cheap well-formedness proxy).
  int64_t braces = 0;
  int64_t brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceRecorderTest, JsonEscapesControlAndQuoteCharacters) {
  TraceRecorder rec;
  const SpanId s = rec.StartSpan("has \"quotes\"\n", "session");
  rec.EndSpan(s);
  std::ostringstream out;
  rec.WriteChromeTrace(out);
  EXPECT_NE(out.str().find("has \\\"quotes\\\"\\n"), std::string::npos);
}

// The disabled path the Session compiles down to: a ScopedSpan over a null
// recorder must not allocate (or do anything else measurable).
TEST(TraceRecorderTest, NullRecorderScopedSpanDoesNotAllocate) {
  const int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span(nullptr, "Run", "session");
    span.Annotate("query", std::string("q"));
    span.Annotate("n", int64_t{1});
    span.Annotate("t", 0.5);
    ASSERT_FALSE(span.active());
  }
  const int64_t after = g_allocations.load(std::memory_order_relaxed);
  // The std::string temporaries for Annotate land in SSO buffers; nothing
  // here may touch the heap.
  EXPECT_EQ(after - before, 0);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("hadad_test_total", "Test counter. Unit: 1.");
  ASSERT_NE(c, nullptr);
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->Value(), 5);
  // Idempotent re-registration returns the same handle.
  EXPECT_EQ(reg.AddCounter("hadad_test_total", "dup"), c);
  // Same name, different type: rejected.
  EXPECT_EQ(reg.AddGauge("hadad_test_total", "clash"), nullptr);

  Gauge* g = reg.AddGauge("hadad_test_bytes", "Test gauge. Unit: bytes.");
  g->Set(123.0);
  EXPECT_EQ(g->Value(), 123.0);
  EXPECT_EQ(reg.FindCounter("hadad_test_total"), c);
  EXPECT_EQ(reg.FindGauge("hadad_test_total"), nullptr);
  EXPECT_EQ(reg.FindCounter("absent"), nullptr);
}

TEST(MetricsTest, HistogramBucketMath) {
  MetricsRegistry reg;
  Histogram* h = reg.AddHistogram("hadad_test_seconds",
                                  "Test histogram. Unit: seconds.",
                                  {0.001, 0.01, 0.1, 1.0});
  ASSERT_NE(h, nullptr);
  h->Observe(0.0005);  // bucket 0 (le 0.001)
  h->Observe(0.001);   // bucket 0 — upper edges are inclusive (le semantics)
  h->Observe(0.005);   // bucket 1
  h->Observe(0.1);     // bucket 2 — exact edge again
  h->Observe(0.5);     // bucket 3
  h->Observe(50.0);    // +Inf bucket
  EXPECT_EQ(h->BucketCount(0), 2);
  EXPECT_EQ(h->BucketCount(1), 1);
  EXPECT_EQ(h->BucketCount(2), 1);
  EXPECT_EQ(h->BucketCount(3), 1);
  EXPECT_EQ(h->BucketCount(4), 1);  // +Inf
  EXPECT_EQ(h->Count(), 6);
  EXPECT_NEAR(h->Sum(), 0.0005 + 0.001 + 0.005 + 0.1 + 0.5 + 50.0, 1e-12);
}

TEST(MetricsTest, HistogramQuantileInterpolatesWithinBucket) {
  MetricsRegistry reg;
  Histogram* h = reg.AddHistogram("hadad_q_seconds", "q",
                                  {0.01, 0.1, 1.0});
  // 8 observations in (0.01, 0.1]: quantile ranks land in bucket 1 and
  // interpolate linearly across its width.
  for (int i = 0; i < 8; ++i) h->Observe(0.05);
  // p50 rank = 4 of 8, all in bucket 1 → 0.01 + (0.1-0.01) * 4/8.
  EXPECT_NEAR(HistogramQuantile(*h, 0.5), 0.055, 1e-9);
  // p100 → bucket 1's upper bound.
  EXPECT_NEAR(HistogramQuantile(*h, 1.0), 0.1, 1e-9);
  // p0 → bucket 1's lower bound (the first bucket with any mass).
  EXPECT_NEAR(HistogramQuantile(*h, 0.0), 0.01, 1e-9);
}

TEST(MetricsTest, HistogramQuantileSpansBucketsAndClampsInf) {
  MetricsRegistry reg;
  Histogram* h = reg.AddHistogram("hadad_q2_seconds", "q",
                                  {0.001, 0.01, 0.1, 1.0});
  for (int i = 0; i < 90; ++i) h->Observe(0.0005);  // bucket 0
  for (int i = 0; i < 9; ++i) h->Observe(0.05);     // bucket 2
  h->Observe(5.0);                                  // +Inf bucket
  // p50 rank = 50 of 100, inside bucket 0 → 0 + 0.001 * 50/90.
  EXPECT_NEAR(HistogramQuantile(*h, 0.5), 0.001 * 50.0 / 90.0, 1e-9);
  // p95 rank = 95, bucket 2 holds ranks 91..99 → interpolate 5/9 across.
  EXPECT_NEAR(HistogramQuantile(*h, 0.95), 0.01 + 0.09 * 5.0 / 9.0, 1e-9);
  // p99.9 lands in the +Inf bucket → clamp to the last finite bound.
  EXPECT_NEAR(HistogramQuantile(*h, 0.999), 1.0, 1e-9);
}

TEST(MetricsTest, HistogramQuantileEmptyHistogramIsZero) {
  MetricsRegistry reg;
  Histogram* h = reg.AddHistogram("hadad_q3_seconds", "q", {0.1, 1.0});
  EXPECT_EQ(HistogramQuantile(*h, 0.5), 0.0);
}

TEST(MetricsTest, ConcurrentObservations) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("hadad_conc_total", "c");
  Histogram* h = reg.AddHistogram("hadad_conc_seconds", "h", {1.0});
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c, h] {
      for (int i = 0; i < kIters; ++i) {
        c->Inc();
        h->Observe(0.5);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c->Value(), kThreads * kIters);
  EXPECT_EQ(h->Count(), kThreads * kIters);
  EXPECT_EQ(h->BucketCount(0), kThreads * kIters);
  EXPECT_NEAR(h->Sum(), 0.5 * kThreads * kIters, 1e-6);
}

TEST(MetricsTest, PrometheusRendering) {
  MetricsRegistry reg;
  reg.AddCounter("hadad_runs_total", "Completed runs. Unit: 1.")->Inc(3);
  reg.AddGauge("hadad_cache_size", "Entries. Unit: 1.")->Set(2.0);
  Histogram* h =
      reg.AddHistogram("hadad_lat_seconds", "Latency. Unit: seconds.",
                       {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);

  const std::string text = reg.Render();
  EXPECT_NE(text.find("# HELP hadad_runs_total Completed runs. Unit: 1."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hadad_runs_total counter"), std::string::npos);
  EXPECT_NE(text.find("hadad_runs_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hadad_cache_size gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hadad_lat_seconds histogram"),
            std::string::npos);
  // Cumulative bucket counts: le="0.1" has 1, le="1" has 2, +Inf has 2.
  EXPECT_NE(text.find("hadad_lat_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("hadad_lat_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("hadad_lat_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("hadad_lat_seconds_count 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Session integration: tracing, metrics, EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

std::shared_ptr<api::Session> MakeTracedSession(int threads) {
  Rng rng(7);
  auto session = api::SessionBuilder()
                     .Put("M", matrix::RandomDense(rng, 40, 12))
                     .Put("N", matrix::RandomDense(rng, 12, 40))
                     .Put("v", matrix::RandomDense(rng, 40, 1))
                     .Threads(threads)
                     .Tracing()
                     .Build();
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return *session;
}

TEST(SessionTracingTest, EmitsSpansAcrossLayers) {
  std::shared_ptr<api::Session> session = MakeTracedSession(2);
  auto result = session->Run("t(N) %*% t(M) %*% v");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Second run: plan-cache hit path.
  ASSERT_TRUE(session->Run("t(N) %*% t(M) %*% v").ok());

  ASSERT_NE(session->trace(), nullptr);
  const std::vector<Span> spans = session->trace()->Snapshot();
  bool saw_session = false;
  bool saw_cache_miss = false;
  bool saw_cache_hit = false;
  bool saw_plan = false;
  bool saw_compile = false;
  bool saw_kernel = false;
  for (const Span& s : spans) {
    if (s.category == "session" && s.name == "Run") saw_session = true;
    if (s.category == "plan") saw_plan = true;
    if (s.category == "compile") saw_compile = true;
    if (s.category == "kernel") saw_kernel = true;
    if (s.category == "cache") {
      for (const auto& [k, v] : s.attrs) {
        if (k == "outcome" && v == "miss") saw_cache_miss = true;
        if (k == "outcome" && v == "hit") saw_cache_hit = true;
      }
    }
  }
  EXPECT_TRUE(saw_session);
  EXPECT_TRUE(saw_cache_miss);
  EXPECT_TRUE(saw_cache_hit);
  EXPECT_TRUE(saw_plan);
  EXPECT_TRUE(saw_compile);
  EXPECT_TRUE(saw_kernel);

  // Kernel spans parent into the session root, carry shape attributes.
  for (const Span& s : spans) {
    if (s.category != "kernel") continue;
    ASSERT_NE(s.parent, kNoSpan);
    bool has_nnz = false;
    for (const auto& [k, v] : s.attrs) has_nnz |= (k == "nnz");
    EXPECT_TRUE(has_nnz) << s.name;
  }
}

TEST(SessionTracingTest, MutationEmitsViewSpans) {
  Rng rng(3);
  auto built = api::SessionBuilder()
                   .Put("M", matrix::RandomDense(rng, 20, 6))
                   .AddView("V", "t(M)")
                   .AdaptiveViews(int64_t{16} << 20, /*min_hits=*/2)
                   .Tracing()
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::shared_ptr<api::Session> session = *built;
  ASSERT_TRUE(session->Update("M", matrix::RandomDense(rng, 20, 6)).ok());

  bool saw_refresh = false;
  bool saw_propagation = false;
  bool saw_update_root = false;
  for (const Span& s : session->trace()->Snapshot()) {
    if (s.category == "views" && s.name == "view_refresh") saw_refresh = true;
    if (s.category == "views" && s.name == "mutation_propagation") {
      saw_propagation = true;
    }
    if (s.category == "session" && s.name == "Update") saw_update_root = true;
  }
  EXPECT_TRUE(saw_refresh);
  EXPECT_TRUE(saw_propagation);
  EXPECT_TRUE(saw_update_root);
}

TEST(SessionTracingTest, DumpTraceWritesFile) {
  std::shared_ptr<api::Session> session = MakeTracedSession(1);
  ASSERT_TRUE(session->Run("M %*% N").ok());
  const std::string path = ::testing::TempDir() + "hadad_trace_test.json";
  ASSERT_TRUE(session->DumpTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(SessionTracingTest, UntracedSessionHasNoRecorder) {
  Rng rng(5);
  auto built = api::SessionBuilder()
                   .Put("M", matrix::RandomDense(rng, 10, 10))
                   .Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ((*built)->trace(), nullptr);
  EXPECT_EQ((*built)->DumpTrace("/tmp/never.json").code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionMetricsTest, TextCarriesSessionCounters) {
  std::shared_ptr<api::Session> session = MakeTracedSession(2);
  ASSERT_TRUE(session->Run("M %*% N").ok());
  ASSERT_TRUE(session->Run("M %*% N").ok());
  const std::string text = session->MetricsText();
  EXPECT_NE(text.find("hadad_session_runs_total 2"), std::string::npos);
  EXPECT_NE(text.find("hadad_session_plan_cache_hits_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("hadad_session_plan_cache_misses_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("hadad_plan_cache_size 1"), std::string::npos);
  EXPECT_NE(text.find("hadad_threadpool_threads 2"), std::string::npos);
  EXPECT_NE(text.find("hadad_run_seconds_count 2"), std::string::npos);

  // The SessionStats view reads the same registry.
  const api::SessionStats stats = session->stats();
  EXPECT_EQ(stats.runs, 2);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 1);
}

TEST(ExplainAnalyzeTest, RendersExecutedDagWithTimings) {
  std::shared_ptr<api::Session> session = MakeTracedSession(2);
  auto prepared = session->Prepare("t(N) %*% t(M) %*% v");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto report = prepared->ExplainAnalyze();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_NE(report->find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(report->find("nodes"), std::string::npos);
  EXPECT_NE(report->find("#0"), std::string::npos);  // Topological node ids.
  EXPECT_NE(report->find("nnz="), std::string::npos);
  EXPECT_NE(report->find("ms ("), std::string::npos);  // time (share%).
  EXPECT_NE(report->find("work "), std::string::npos);
  EXPECT_NE(report->find("gamma "), std::string::npos);
}

// ExplainAnalyze works without tracing too — stats collection alone feeds
// the report.
TEST(ExplainAnalyzeTest, WorksWithoutTracing) {
  Rng rng(9);
  auto built = api::SessionBuilder()
                   .Put("M", matrix::RandomDense(rng, 16, 16))
                   .Threads(1)
                   .Build();
  ASSERT_TRUE(built.ok());
  auto prepared = (*built)->Prepare("M %*% M");
  ASSERT_TRUE(prepared.ok());
  auto report = prepared->ExplainAnalyze();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("EXPLAIN ANALYZE"), std::string::npos);
}

// The per-node seconds of the report's source data must reconcile with the
// aggregate: sum(node_timings.seconds) == total_operator_seconds (same
// measurements, two aggregations).
TEST(ExplainAnalyzeTest, NodeSecondsSumMatchesTotalOperatorSeconds) {
  Rng rng(13);
  engine::Workspace ws;
  ws.Put("A", matrix::RandomDense(rng, 60, 60));
  ws.Put("B", matrix::RandomDense(rng, 60, 60));
  auto expr = la::ParseExpression("(A %*% B) + t(A %*% B)");
  ASSERT_TRUE(expr.ok());
  engine::ExecOptions opts;
  opts.threads = 2;
  engine::ExecStats stats;
  auto result = engine::Execute(**expr, ws, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(stats.node_timings.empty());
  double node_sum = 0.0;
  for (const engine::NodeTiming& t : stats.node_timings) {
    node_sum += t.seconds;
  }
  EXPECT_GT(stats.total_operator_seconds, 0.0);
  EXPECT_NEAR(node_sum, stats.total_operator_seconds,
              0.1 * stats.total_operator_seconds);
}

}  // namespace
}  // namespace hadad::obs
