#include "matrix/matrix_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/generate.h"

namespace hadad::matrix {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CsvIoTest, RoundTrip) {
  Rng rng(1);
  Matrix m = RandomDense(rng, 5, 4, -3.0, 3.0);
  std::string path = TempPath("m.csv");
  ASSERT_TRUE(WriteCsv(m, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(m, 1e-12));
}

TEST(CsvIoTest, MissingFileIsIoError) {
  auto r = ReadCsv(TempPath("nonexistent-file.csv"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvIoTest, MalformedNumberIsIoError) {
  std::string path = TempPath("bad.csv");
  std::ofstream(path) << "1,2\n3,abc\n";
  auto r = ReadCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvIoTest, RaggedRowsAreIoError) {
  std::string path = TempPath("ragged.csv");
  std::ofstream(path) << "1,2\n3\n";
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST(MtxIoTest, RoundTripPreservesSparsity) {
  Rng rng(2);
  Matrix m = RandomSparse(rng, 40, 30, 0.05);
  std::string path = TempPath("m.mtx");
  ASSERT_TRUE(WriteMtx(m, path).ok());
  auto back = ReadMtx(path);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->is_sparse());
  EXPECT_EQ(back->sparse().nnz(), m.sparse().nnz());
  EXPECT_TRUE(back->ApproxEquals(m, 1e-12));
}

TEST(MtxIoTest, HeaderValidation) {
  std::string path = TempPath("noheader.mtx");
  std::ofstream(path) << "2 2 1\n1 1 5.0\n";
  auto r = ReadMtx(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(MtxIoTest, OutOfRangeCoordinateIsError) {
  std::string path = TempPath("oob.mtx");
  std::ofstream(path) << "%%MatrixMarket matrix coordinate real general\n"
                      << "2 2 1\n5 1 1.0\n";
  EXPECT_FALSE(ReadMtx(path).ok());
}

TEST(MtxIoTest, TruncatedEntriesIsError) {
  std::string path = TempPath("trunc.mtx");
  std::ofstream(path) << "%%MatrixMarket matrix coordinate real general\n"
                      << "2 2 3\n1 1 1.0\n";
  EXPECT_FALSE(ReadMtx(path).ok());
}

}  // namespace
}  // namespace hadad::matrix
