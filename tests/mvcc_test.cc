// MVCC snapshot isolation: version chains, pinned snapshots, batched
// mutations, and the headline property — writers never block readers.
// The randomized stress suite races N reader threads against M writers
// applying a pre-generated mutation sequence; every reader result must be
// bit-identical to a single-threaded oracle replay of some prefix of that
// sequence observed while the query was in flight.
//
// Knobs (both read from the environment):
//   HADAD_STRESS_SEED   fixed RNG seed (default: random, printed on start)
//   HADAD_STRESS_ITERS  reader iterations per thread (default 300; the
//                       TSan CI arm runs 1000)

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "engine/workspace.h"
#include "matrix/generate.h"
#include "matrix/matrix.h"

namespace hadad {
namespace {

matrix::Matrix Constant(int64_t rows, int64_t cols, double v) {
  matrix::DenseMatrix m(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) m.At(r, c) = v;
  }
  return matrix::Matrix(std::move(m));
}

// Exact (bitwise) equality — snapshot isolation promises the reader the
// precise committed state, not an approximation of it.
bool BitEqual(const matrix::Matrix& a, const matrix::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (a.At(r, c) != b.At(r, c)) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Workspace version chains
// ---------------------------------------------------------------------------

TEST(WorkspaceMvccTest, SnapshotSeesPreMutationValues) {
  engine::Workspace ws;
  ws.Put("A", Constant(2, 2, 1.0));
  ws.Put("B", Constant(3, 3, 2.0));

  engine::SnapshotPtr snap = ws.PinSnapshot();
  EXPECT_EQ(ws.PinnedSnapshots(), 1);

  ws.Update("A", Constant(2, 2, 9.0));
  ws.Put("C", Constant(1, 1, 5.0));

  // The snapshot is a frozen point in time: old A, no C.
  ASSERT_NE(snap->Find("A"), nullptr);
  EXPECT_EQ(snap->Find("A")->At(0, 0), 1.0);
  EXPECT_EQ(snap->Find("C"), nullptr);
  ASSERT_NE(snap->Find("B"), nullptr);
  EXPECT_EQ(snap->Find("B")->At(2, 2), 2.0);

  // The live workspace moved on.
  EXPECT_EQ(ws.Find("A")->At(0, 0), 9.0);
  ASSERT_NE(ws.Find("C"), nullptr);
}

TEST(WorkspaceMvccTest, RetiredVersionsDrainWhenLastPinDrops) {
  engine::Workspace ws;
  ws.Put("A", Constant(4, 4, 1.0));
  EXPECT_EQ(ws.LiveVersions(), 1);
  const int64_t one_version_bytes = ws.RetainedBytes();

  // Unpinned overwrite: the old version frees immediately.
  ws.Update("A", Constant(4, 4, 2.0));
  EXPECT_EQ(ws.LiveVersions(), 1);
  EXPECT_EQ(ws.RetiredTotal(), 1);
  EXPECT_EQ(ws.RetainedBytes(), one_version_bytes);

  // Pinned overwrite: the old version is retained for the reader.
  engine::SnapshotPtr snap = ws.PinSnapshot();
  ws.Update("A", Constant(4, 4, 3.0));
  EXPECT_EQ(ws.LiveVersions(), 2);
  EXPECT_EQ(ws.RetiredTotal(), 2);
  EXPECT_GT(ws.RetainedBytes(), one_version_bytes);
  EXPECT_EQ(snap->Find("A")->At(0, 0), 2.0);

  // Dropping the last pin drains the retired version.
  snap.reset();
  EXPECT_EQ(ws.PinnedSnapshots(), 0);
  EXPECT_EQ(ws.LiveVersions(), 1);
  EXPECT_EQ(ws.RetainedBytes(), one_version_bytes);
  EXPECT_EQ(ws.Find("A")->At(0, 0), 3.0);
}

TEST(WorkspaceMvccTest, ErasedChainSurvivesUntilReadersDrain) {
  engine::Workspace ws;
  ws.Put("A", Constant(2, 2, 7.0));

  engine::SnapshotPtr snap = ws.PinSnapshot();
  EXPECT_TRUE(ws.Erase("A"));

  // Live view: gone. Epoch reads "never stored" — erase semantics are
  // unchanged by MVCC (mutation_test pins the exact contract).
  EXPECT_EQ(ws.Find("A"), nullptr);
  EXPECT_EQ(ws.EpochOf("A"), engine::Workspace::kNeverStored);

  // Reader view: still there, retained by the pin.
  ASSERT_NE(snap->Find("A"), nullptr);
  EXPECT_EQ(snap->Find("A")->At(1, 1), 7.0);
  EXPECT_EQ(ws.LiveVersions(), 1);

  snap.reset();
  EXPECT_EQ(ws.LiveVersions(), 0);
  EXPECT_EQ(ws.RetainedBytes(), 0);
}

TEST(WorkspaceMvccTest, OldestPinIsTheRetentionWatermark) {
  engine::Workspace ws;
  ws.Put("A", Constant(2, 2, 0.0));

  engine::SnapshotPtr s1 = ws.PinSnapshot();
  ws.Update("A", Constant(2, 2, 1.0));
  engine::SnapshotPtr s2 = ws.PinSnapshot();
  ws.Update("A", Constant(2, 2, 2.0));

  EXPECT_EQ(ws.PinnedSnapshots(), 2);
  EXPECT_EQ(ws.LiveVersions(), 3);
  EXPECT_EQ(s1->Find("A")->At(0, 0), 0.0);
  EXPECT_EQ(s2->Find("A")->At(0, 0), 1.0);

  // Retention is governed by the oldest pin: versions retired after it
  // stay held, so dropping the newer pin alone frees nothing.
  s2.reset();
  EXPECT_EQ(ws.PinnedSnapshots(), 1);
  EXPECT_EQ(ws.LiveVersions(), 3);
  EXPECT_EQ(s1->Find("A")->At(0, 0), 0.0);

  // Dropping the watermark pin drains every retired version at once.
  s1.reset();
  EXPECT_EQ(ws.PinnedSnapshots(), 0);
  EXPECT_EQ(ws.LiveVersions(), 1);
  EXPECT_EQ(ws.Find("A")->At(0, 0), 2.0);
}

TEST(WorkspaceMvccTest, AppendIsCopyOnWriteUnderPins) {
  engine::Workspace ws;
  ws.Put("A", Constant(2, 3, 1.0));

  engine::SnapshotPtr snap = ws.PinSnapshot();
  ASSERT_TRUE(ws.Append("A", Constant(1, 3, 2.0)).ok());

  // The reader's version keeps its original extent; the live one grew.
  EXPECT_EQ(snap->Find("A")->rows(), 2);
  EXPECT_EQ(ws.Find("A")->rows(), 3);
  EXPECT_EQ(ws.Find("A")->At(2, 0), 2.0);
  EXPECT_EQ(ws.RetiredTotal(), 1);

  snap.reset();
  EXPECT_EQ(ws.LiveVersions(), 1);
}

TEST(WorkspaceMvccTest, SnapshotOutlivesFurtherChurn) {
  engine::Workspace ws;
  ws.Put("A", Constant(2, 2, 1.0));
  engine::SnapshotPtr snap = ws.PinSnapshot();

  // Pile several generations onto the chain past the pin.
  for (int i = 2; i <= 6; ++i) ws.Update("A", Constant(2, 2, double(i)));
  EXPECT_EQ(snap->Find("A")->At(0, 0), 1.0);
  // Every version retired after the oldest pin is retained until that pin
  // drops (min-pin watermark): 5 retired generations plus the live tip.
  EXPECT_EQ(ws.LiveVersions(), 6);
  EXPECT_EQ(ws.RetiredTotal(), 5);

  snap.reset();
  EXPECT_EQ(ws.LiveVersions(), 1);
}

// ---------------------------------------------------------------------------
// Session::Mutate — batched mutations
// ---------------------------------------------------------------------------

TEST(MutateBatchTest, AppliesAtomicallyWithOneRefreshWave) {
  auto session = api::SessionBuilder()
                     .Put("A", Constant(2, 2, 1.0))
                     .Put("B", Constant(2, 2, 2.0))
                     .AddView("V", "A + B")
                     .Build()
                     .value();

  Status st = session->Mutate({api::Mutation::Update("A", Constant(2, 2, 3.0)),
                               api::Mutation::Update("B", Constant(2, 2, 4.0))});
  ASSERT_TRUE(st.ok()) << st.ToString();

  auto v = session->Run("V");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->At(0, 0), 7.0);
  auto sum = session->Run("A + B");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->At(1, 1), 7.0);
  EXPECT_EQ(session->stats().data_mutations, 2);
}

TEST(MutateBatchTest, ValidationErrorsAreIndexedAndNothingApplies) {
  auto session =
      api::SessionBuilder().Put("A", Constant(2, 2, 1.0)).Build().value();

  // Entry 1 is invalid (column mismatch on append): the whole batch must
  // be rejected up front with the failing index in the message.
  Status st = session->Mutate({api::Mutation::Update("A", Constant(2, 2, 8.0)),
                               api::Mutation::Append("A", Constant(1, 3, 0.0))});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("Mutate[1]"), std::string::npos)
      << st.ToString();

  auto a = session->Run("A");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->At(0, 0), 1.0);
  EXPECT_EQ(session->stats().data_mutations, 0);

  // Unknown-name validation carries its index too.
  st = session->Mutate({api::Mutation::Update("Zz", Constant(2, 2, 0.0)),
                        api::Mutation::Update("A", Constant(2, 2, 0.0))});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("Mutate[0]"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(session->stats().data_mutations, 0);
}

TEST(MutateBatchTest, ViewRefreshFailureRollsBackWholeBatch) {
  matrix::DenseMatrix x(2, 2);
  x.At(0, 0) = 2.0;
  x.At(1, 1) = 2.0;
  auto session = api::SessionBuilder()
                     .Put("A", Constant(2, 2, 1.0))
                     .Put("X", matrix::Matrix(std::move(x)))
                     .AddView("VI", "inv(X)")
                     .Build()
                     .value();

  // Shape-valid but runtime-fatal: the singular X only fails when the VI
  // refresh evaluates inv(X), after both bases already applied.
  Status st =
      session->Mutate({api::Mutation::Update("A", Constant(2, 2, 5.0)),
                       api::Mutation::Update("X", Constant(2, 2, 0.0))});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("rolled back"), std::string::npos)
      << st.ToString();

  // Every base restored, the view still answers from its old value.
  auto a = session->Run("A");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->At(0, 0), 1.0);
  auto vi = session->Run("VI");
  ASSERT_TRUE(vi.ok()) << vi.status().ToString();
  EXPECT_EQ(vi->At(0, 0), 0.5);
  auto inv = session->Run("inv(X)");
  ASSERT_TRUE(inv.ok()) << inv.status().ToString();
  EXPECT_EQ(inv->At(1, 1), 0.5);
  EXPECT_EQ(session->stats().data_mutations, 0);
}

TEST(MutateBatchTest, PutAppendRemoveComposeInOneBatch) {
  auto session =
      api::SessionBuilder().Put("A", Constant(2, 2, 1.0)).Build().value();

  // A later entry may build on an earlier one: Put introduces D, Append
  // grows it in the same batch.
  Status st = session->Mutate({api::Mutation::Put("D", Constant(2, 2, 1.5)),
                               api::Mutation::Append("D", Constant(1, 2, 2.5)),
                               api::Mutation::Update("A", Constant(2, 2, 4.0))});
  ASSERT_TRUE(st.ok()) << st.ToString();

  auto d = session->Run("D");
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->rows(), 3);
  EXPECT_EQ(d->At(0, 0), 1.5);
  EXPECT_EQ(d->At(2, 1), 2.5);
  EXPECT_EQ(session->stats().data_mutations, 3);

  ASSERT_TRUE(session->Remove("D").ok());
  EXPECT_FALSE(session->Run("D").ok());
  auto a = session->Run("A");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->At(0, 0), 4.0);
}

// ---------------------------------------------------------------------------
// Version-retirement leak check
// ---------------------------------------------------------------------------

TEST(MvccLeakTest, RetiredVersionsDrainToZeroAcrossCycles) {
  Rng rng(7);
  auto session = api::SessionBuilder()
                     .Put("A", matrix::RandomDense(rng, 24, 24))
                     .Threads(2)
                     .Build()
                     .value();

  int64_t steady_bytes = -1;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    ASSERT_TRUE(
        session->Update("A", matrix::RandomDense(rng, 24, 24)).ok());
    auto r = session->Run("A %*% A");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (cycle == 10) steady_bytes = session->workspace().RetainedBytes();
  }

  const engine::Workspace& ws = session->workspace();
  EXPECT_EQ(ws.PinnedSnapshots(), 0);
  EXPECT_EQ(ws.LiveVersions(), 1);  // Only "A" is bound.
  EXPECT_EQ(ws.RetainedBytes(), steady_bytes);  // Same-shape churn: flat.
  EXPECT_GE(ws.RetiredTotal(), 1000);

  // The exported metrics agree with the workspace accounting.
  (void)session->MetricsText();  // Refreshes the gauges.
  const obs::MetricsRegistry& m = session->metrics();
  EXPECT_EQ(m.FindGauge("hadad_workspace_pinned_snapshots")->Value(), 0.0);
  EXPECT_EQ(m.FindGauge("hadad_workspace_versions")->Value(), 1.0);
  EXPECT_GE(m.FindCounter("hadad_workspace_retired_total")->Value(), 1000);
}

// ---------------------------------------------------------------------------
// Writers never block readers: a mutation completes while a reader's
// snapshot is still pinned, and the reader's result stays consistent.
// ---------------------------------------------------------------------------

TEST(MvccOverlapTest, MutationCompletesWhilePinHeld) {
  auto session =
      api::SessionBuilder().Put("A", Constant(8, 8, 1.0)).Build().value();

  engine::SnapshotPtr snap = session->workspace().PinSnapshot();
  EXPECT_EQ(session->workspace().PinnedSnapshots(), 1);

  // The writer returns while the reader is pinned — it never waits.
  ASSERT_TRUE(session->Update("A", Constant(8, 8, 2.0)).ok());
  EXPECT_EQ(session->workspace().PinnedSnapshots(), 1);
  EXPECT_GE(session->workspace().RetiredTotal(), 1);

  EXPECT_EQ(snap->Find("A")->At(0, 0), 1.0);
  snap.reset();
  EXPECT_EQ(session->workspace().Find("A")->At(0, 0), 2.0);
}

TEST(MvccOverlapTest, LongReaderQueryOverlapsCompletedMutation) {
  Rng rng(11);
  const std::string query = "((A %*% A) %*% A) %*% A";
  std::vector<matrix::Matrix> versions;
  versions.push_back(matrix::RandomDense(rng, 224, 224, -0.05, 0.05));

  auto session = api::SessionBuilder()
                     .Put("A", versions[0])
                     .Threads(2)
                     .Build()
                     .value();

  // Oracle result per data version, replayed in a twin session (same
  // engine, same plans — results are bit-identical by construction).
  auto oracle = api::SessionBuilder()
                    .Put("A", versions[0])
                    .Threads(2)
                    .Build()
                    .value();
  std::vector<matrix::Matrix> expected;
  {
    auto r = oracle->Run(query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(*r));
  }

  std::atomic<bool> stop{false};
  std::vector<matrix::Matrix> observed;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto r = session->Run(query);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      observed.push_back(std::move(*r));
    }
  });

  // Wait until a reader query has a snapshot pinned, mutate, and check the
  // pin is still held right after the mutation returned: the writer
  // finished inside the reader's execution window. The query runs tens of
  // milliseconds; retry a few times to be robust to scheduling.
  bool overlapped = false;
  for (int attempt = 0; attempt < 5 && !overlapped; ++attempt) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (session->workspace().PinnedSnapshots() < 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    ASSERT_GE(session->workspace().PinnedSnapshots(), 1);

    matrix::Matrix next = matrix::RandomDense(rng, 224, 224, -0.05, 0.05);
    versions.push_back(next);
    ASSERT_TRUE(session->Update("A", std::move(next)).ok());
    overlapped = session->workspace().PinnedSnapshots() >= 1;

    ASSERT_TRUE(oracle->Update("A", versions.back()).ok());
    auto r = oracle->Run(query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(*r));
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_TRUE(overlapped)
      << "no mutation completed while a reader snapshot stayed pinned";

  // Every reader result equals the oracle at exactly one data version —
  // never a torn mix of two.
  ASSERT_FALSE(observed.empty());
  for (const matrix::Matrix& got : observed) {
    bool matched = false;
    for (const matrix::Matrix& want : expected) {
      if (BitEqual(got, want)) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "reader result matches no committed version";
  }
  EXPECT_EQ(session->workspace().PinnedSnapshots(), 0);
}

// ---------------------------------------------------------------------------
// Randomized snapshot-isolation stress suite
// ---------------------------------------------------------------------------

// One committed step of the mutation history: a single mutation or an
// atomic Mutate() batch. Steps commit strictly in order; "prefix p" below
// means steps [0, p) applied.
struct Step {
  std::vector<api::Mutation> mutations;
};

Status ApplyStep(api::Session& session, const Step& step) {
  if (step.mutations.size() == 1) {
    const api::Mutation& m = step.mutations[0];
    switch (m.op) {
      case api::Mutation::Op::kUpdate:
        return session.Update(m.name, m.value);
      case api::Mutation::Op::kAppend:
        return session.Append(m.name, m.value);
      case api::Mutation::Op::kRemove:
        return session.Remove(m.name);
      case api::Mutation::Op::kPut:
        return session.Put(m.name, m.value);
    }
    return Status::InvalidArgument("unknown op");
  }
  return session.Mutate(step.mutations);
}

// Per-(query, prefix) oracle: both the best-rewrite execution and the
// original-form execution (a reader racing heavy churn may fall back to
// the original plan), or nullopt when the query fails at that prefix
// (e.g. D is removed).
struct OracleEntry {
  std::optional<std::pair<matrix::Matrix, matrix::Matrix>> result;
};

TEST(MvccStressTest, RandomizedSnapshotIsolation) {
  uint64_t seed;
  if (const char* s = std::getenv("HADAD_STRESS_SEED")) {
    seed = std::strtoull(s, nullptr, 10);
  } else {
    std::random_device rd;
    seed = (uint64_t{rd()} << 32) ^ rd();
  }
  int iters = 300;
  if (const char* s = std::getenv("HADAD_STRESS_ITERS")) {
    iters = std::max(1, std::atoi(s));
  }
  std::cerr << "[ MVCC stress: seed=" << seed << " iters=" << iters
            << " (override via HADAD_STRESS_SEED / HADAD_STRESS_ITERS) ]\n";

  constexpr int64_t kDim = 16;
  constexpr int kSteps = 200;
  constexpr int kReaders = 3;
  constexpr int kWriters = 2;
  const std::vector<std::string> queries = {
      "(A %*% B) %*% A", "t(A) %*% (A + B)", "(D %*% D) + D"};

  Rng rng(seed);
  auto random_square = [&] {
    return matrix::RandomDense(rng, kDim, kDim, -1.0, 1.0);
  };
  const matrix::Matrix a0 = random_square();
  const matrix::Matrix b0 = random_square();
  const matrix::Matrix d0 = random_square();

  // Pre-generate the mutation history so the oracle and the stress run
  // apply byte-identical values.
  std::vector<Step> steps;
  bool d_exists = true;
  for (int i = 0; i < kSteps; ++i) {
    Step step;
    if (i % 6 == 5) {
      // Atomic two-leaf batch: readers must never observe one half.
      step.mutations.push_back(api::Mutation::Update("A", random_square()));
      step.mutations.push_back(api::Mutation::Update("B", random_square()));
    } else {
      switch (rng.NextBelow(3)) {
        case 0:
          step.mutations.push_back(api::Mutation::Update("A", random_square()));
          break;
        case 1:
          step.mutations.push_back(api::Mutation::Update("B", random_square()));
          break;
        default:
          if (!d_exists) {
            step.mutations.push_back(api::Mutation::Put("D", random_square()));
            d_exists = true;
          } else if (rng.NextBelow(10) < 3) {
            step.mutations.push_back(api::Mutation::Remove("D"));
            d_exists = false;
          } else {
            step.mutations.push_back(
                api::Mutation::Update("D", random_square()));
          }
          break;
      }
    }
    steps.push_back(std::move(step));
  }

  // Single-threaded oracle replay: results for every query at every prefix.
  std::vector<std::array<OracleEntry, 3>> oracle(kSteps + 1);
  {
    auto replay = api::SessionBuilder()
                      .Put("A", a0)
                      .Put("B", b0)
                      .Put("D", d0)
                      .Threads(2)
                      .Build()
                      .value();
    for (int p = 0; p <= kSteps; ++p) {
      for (size_t q = 0; q < queries.size(); ++q) {
        auto prep = replay->Prepare(queries[q]);
        if (!prep.ok()) continue;  // Entry stays nullopt (error prefix).
        auto best = prep->Execute();
        auto orig = prep->ExecuteOriginal();
        if (!best.ok() || !orig.ok()) continue;
        oracle[p][q].result.emplace(std::move(*best), std::move(*orig));
      }
      if (p < kSteps) {
        Status st = ApplyStep(*replay, steps[p]);
        ASSERT_TRUE(st.ok()) << "oracle step " << p << ": " << st.ToString();
      }
    }
  }

  // The raced session starts from the same initial state.
  auto session = api::SessionBuilder()
                     .Put("A", a0)
                     .Put("B", b0)
                     .Put("D", d0)
                     .Threads(2)
                     .Build()
                     .value();

  std::atomic<int64_t> committed{0};     // Steps fully applied, in order.
  std::atomic<int64_t> next_ticket{0};   // Writer work distribution.
  std::atomic<int64_t> reader_progress{0};
  std::atomic<int64_t> readers_live{kReaders};
  const int64_t total_reader_iters = int64_t{kReaders} * iters;
  std::vector<std::string> failures(kReaders);

  auto writer_fn = [&] {
    for (;;) {
      const int64_t i = next_ticket.fetch_add(1, std::memory_order_relaxed);
      if (i >= kSteps) return;
      // Commit strictly in sequence so "prefix" stays well-defined, and
      // pace the history across the readers' whole run so mutations keep
      // landing while queries are in flight.
      for (;;) {
        const bool my_turn = committed.load(std::memory_order_acquire) == i;
        const bool paced =
            readers_live.load(std::memory_order_acquire) == 0 ||
            reader_progress.load(std::memory_order_relaxed) * kSteps >=
                i * total_reader_iters;
        if (my_turn && paced) break;
        std::this_thread::yield();
      }
      Status st = ApplyStep(*session, steps[i]);
      ASSERT_TRUE(st.ok()) << "step " << i << ": " << st.ToString();
      committed.store(i + 1, std::memory_order_release);
    }
  };

  auto reader_fn = [&](int id) {
    for (int it = 0; it < iters; ++it) {
      const size_t q = (size_t(it) + size_t(id)) % queries.size();
      const int64_t c0 = committed.load(std::memory_order_acquire);
      Result<matrix::Matrix> got = session->Run(queries[q]);
      const int64_t c1 = committed.load(std::memory_order_acquire);
      // The pinned snapshot was taken between the two reads; a writer mid-
      // commit at pin time accounts for the +1.
      const int64_t hi = std::min<int64_t>(c1 + 1, kSteps);

      bool matched = false;
      for (int64_t p = c0; p <= hi && !matched; ++p) {
        const OracleEntry& want = oracle[size_t(p)][q];
        if (got.ok()) {
          matched = want.result.has_value() &&
                    (BitEqual(*got, want.result->first) ||
                     BitEqual(*got, want.result->second));
        } else {
          matched = !want.result.has_value();
        }
      }
      if (!matched) {
        std::ostringstream msg;
        msg << "seed=" << seed << " reader=" << id << " iter=" << it
            << " query=\"" << queries[q] << "\" window=[" << c0 << "," << hi
            << "] result="
            << (got.ok() ? "ok" : got.status().ToString())
            << ": no prefix in the committed window explains this result";
        failures[size_t(id)] = msg.str();
        break;
      }
      reader_progress.fetch_add(1, std::memory_order_relaxed);
    }
    readers_live.fetch_sub(1, std::memory_order_release);
  };

  std::vector<std::thread> threads;
  threads.reserve(kReaders + kWriters);
  for (int r = 0; r < kReaders; ++r) threads.emplace_back(reader_fn, r);
  for (int w = 0; w < kWriters; ++w) threads.emplace_back(writer_fn);
  for (std::thread& t : threads) t.join();

  for (const std::string& f : failures) {
    EXPECT_TRUE(f.empty()) << f;
  }
  EXPECT_EQ(committed.load(), kSteps);
  EXPECT_EQ(session->workspace().PinnedSnapshots(), 0);
  EXPECT_GE(session->workspace().RetiredTotal(), kSteps);
}

}  // namespace
}  // namespace hadad
