#include "chase/engine.h"

#include <gtest/gtest.h>

#include "chase/ast.h"
#include "chase/homomorphism.h"
#include "chase/instance.h"

namespace hadad::chase {
namespace {

TEST(InstanceTest, ConstantsAreInterned) {
  Instance inst;
  NodeId a = inst.InternConstant("M.csv");
  NodeId b = inst.InternConstant("M.csv");
  NodeId c = inst.InternConstant("N.csv");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(inst.IsConstant(a));
  EXPECT_EQ(inst.ConstantValue(a), "M.csv");
  EXPECT_EQ(inst.LookupConstant("M.csv"), a);
  EXPECT_EQ(inst.LookupConstant("unseen"), kNoNode);
}

TEST(InstanceTest, FreshNullsAreDistinct) {
  Instance inst;
  NodeId a = inst.FreshNull();
  NodeId b = inst.FreshNull();
  EXPECT_NE(a, b);
  EXPECT_FALSE(inst.IsConstant(a));
}

TEST(InstanceTest, MergePrefersConstantRoot) {
  Instance inst;
  NodeId c = inst.InternConstant("x");
  NodeId n = inst.FreshNull();
  ASSERT_TRUE(inst.Merge(n, c).ok());
  EXPECT_EQ(inst.Find(n), c);
  EXPECT_TRUE(inst.IsConstant(n));
}

TEST(InstanceTest, MergingDistinctConstantsFails) {
  Instance inst;
  NodeId a = inst.InternConstant("x");
  NodeId b = inst.InternConstant("y");
  EXPECT_FALSE(inst.Merge(a, b).ok());
}

TEST(InstanceTest, MergeObserverReportsRoots) {
  Instance inst;
  NodeId a = inst.FreshNull();
  NodeId b = inst.FreshNull();
  NodeId absorbed = kNoNode, survivor = kNoNode;
  inst.SetMergeObserver([&](NodeId ab, NodeId s) {
    absorbed = ab;
    survivor = s;
  });
  ASSERT_TRUE(inst.Merge(a, b).ok());
  EXPECT_NE(absorbed, kNoNode);
  EXPECT_EQ(inst.Find(absorbed), survivor);
}

TEST(InstanceTest, DuplicateFactsFuseDerivations) {
  Instance inst;
  int32_t p = inst.InternPredicate("p");
  NodeId a = inst.FreshNull();
  bool added = false;
  FactId f1 = inst.AddFact(p, {a}, Derivation{0, {}}, false, &added);
  EXPECT_TRUE(added);
  FactId f2 = inst.AddFact(p, {a}, Derivation{1, {}}, false, &added);
  EXPECT_FALSE(added);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(inst.fact(f1).derivations.size(), 2u);
}

TEST(InstanceTest, RebuildFusesFactsAfterMerge) {
  Instance inst;
  int32_t p = inst.InternPredicate("p");
  NodeId a = inst.FreshNull();
  NodeId b = inst.FreshNull();
  inst.AddFact(p, {a}, Derivation{}, true, nullptr);
  inst.AddFact(p, {b}, Derivation{}, true, nullptr);
  EXPECT_EQ(inst.num_facts(), 2);
  ASSERT_TRUE(inst.Merge(a, b).ok());
  inst.Rebuild();
  EXPECT_EQ(inst.num_facts(), 1);
  EXPECT_EQ(inst.FactsOf(p).size(), 1u);
}

TEST(HomomorphismTest, ConstantsRestrictMatches) {
  Instance inst;
  int32_t name = inst.InternPredicate("name");
  NodeId m = inst.FreshNull();
  NodeId n = inst.FreshNull();
  inst.AddFact(name, {m, inst.InternConstant("M.csv")}, Derivation{}, true,
               nullptr);
  inst.AddFact(name, {n, inst.InternConstant("N.csv")}, Derivation{}, true,
               nullptr);
  int count = 0;
  FindHomomorphisms({MakeAtom("name", {Var("X"), Cst("M.csv")})}, inst, {},
                    [&](const Binding& b, const std::vector<FactId>&) {
                      EXPECT_EQ(b.at("X"), inst.Find(m));
                      ++count;
                      return true;
                    });
  EXPECT_EQ(count, 1);
}

TEST(HomomorphismTest, RepeatedVariablesEnforceEquality) {
  Instance inst;
  int32_t e = inst.InternPredicate("edge");
  NodeId a = inst.FreshNull();
  NodeId b = inst.FreshNull();
  inst.AddFact(e, {a, b}, Derivation{}, true, nullptr);
  inst.AddFact(e, {a, a}, Derivation{}, true, nullptr);
  int count = 0;
  FindHomomorphisms({MakeAtom("edge", {Var("X"), Var("X")})}, inst, {},
                    [&](const Binding&, const std::vector<FactId>&) {
                      ++count;
                      return true;
                    });
  EXPECT_EQ(count, 1);
}

TEST(HomomorphismTest, MultiAtomJoin) {
  Instance inst;
  int32_t r = inst.InternPredicate("R");
  int32_t s = inst.InternPredicate("S");
  NodeId x = inst.FreshNull(), z = inst.FreshNull(), y = inst.FreshNull();
  NodeId w = inst.FreshNull();
  inst.AddFact(r, {x, z}, Derivation{}, true, nullptr);
  inst.AddFact(s, {z, y}, Derivation{}, true, nullptr);
  inst.AddFact(s, {w, y}, Derivation{}, true, nullptr);  // Doesn't join R.
  int count = 0;
  FindHomomorphisms({MakeAtom("R", {Var("A"), Var("B")}),
                     MakeAtom("S", {Var("B"), Var("C")})},
                    inst, {},
                    [&](const Binding& b, const std::vector<FactId>&) {
                      EXPECT_EQ(b.at("B"), inst.Find(z));
                      ++count;
                      return true;
                    });
  EXPECT_EQ(count, 1);
}

// The paper's Example 4.1: V(x,y) :- R(x,z), S(z,y); chasing Q's canonical
// instance with V_IO must add the V fact.
TEST(ChaseEngineTest, ViewIoConstraintFires) {
  Instance inst;
  int32_t r = inst.InternPredicate("R");
  int32_t s = inst.InternPredicate("S");
  NodeId x = inst.FreshNull(), z = inst.FreshNull(), y = inst.FreshNull();
  inst.AddFact(r, {x, z}, Derivation{}, true, nullptr);
  inst.AddFact(s, {z, y}, Derivation{}, true, nullptr);

  Constraint v_io = MakeTgd(
      "V_IO",
      {MakeAtom("R", {Var("x"), Var("z")}), MakeAtom("S", {Var("z"), Var("y")})},
      {MakeAtom("V", {Var("x"), Var("y")})});
  ChaseEngine engine(&inst, {v_io});
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  int32_t v = inst.LookupPredicate("V");
  ASSERT_GE(v, 0);
  ASSERT_EQ(inst.FactsOf(v).size(), 1u);
  const Fact& f = inst.fact(inst.FactsOf(v)[0]);
  EXPECT_EQ(inst.Find(f.args[0]), inst.Find(x));
  EXPECT_EQ(inst.Find(f.args[1]), inst.Find(y));
  // Provenance: derived by constraint 0 from the two initial facts.
  ASSERT_EQ(f.derivations.size(), 1u);
  EXPECT_EQ(f.derivations[0].constraint_index, 0);
  EXPECT_EQ(f.derivations[0].premise_facts.size(), 2u);
}

// V_OI introduces existentially quantified nulls: V(x,y) -> ∃z R(x,z),S(z,y).
TEST(ChaseEngineTest, ExistentialsCreateLabelledNulls) {
  Instance inst;
  int32_t v = inst.InternPredicate("V");
  NodeId a = inst.FreshNull(), b = inst.FreshNull();
  inst.AddFact(v, {a, b}, Derivation{}, true, nullptr);
  Constraint v_oi = MakeTgd(
      "V_OI", {MakeAtom("V", {Var("x"), Var("y")})},
      {MakeAtom("R", {Var("x"), Var("z")}), MakeAtom("S", {Var("z"), Var("y")})});
  ChaseEngine engine(&inst, {v_oi});
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  int32_t r = inst.LookupPredicate("R");
  int32_t s = inst.LookupPredicate("S");
  ASSERT_EQ(inst.FactsOf(r).size(), 1u);
  ASSERT_EQ(inst.FactsOf(s).size(), 1u);
  // The shared existential z must be the same null in both facts.
  EXPECT_EQ(inst.Find(inst.fact(inst.FactsOf(r)[0]).args[1]),
            inst.Find(inst.fact(inst.FactsOf(s)[0]).args[0]));
}

// The restricted chase must not refire a TGD whose conclusion is already
// satisfied — otherwise commutativity constraints would loop forever.
TEST(ChaseEngineTest, RestrictedChaseTerminatesOnCommutativity) {
  Instance inst;
  int32_t add = inst.InternPredicate("addM");
  NodeId m = inst.FreshNull(), n = inst.FreshNull(), r0 = inst.FreshNull();
  inst.AddFact(add, {m, n, r0}, Derivation{}, true, nullptr);
  Constraint comm = MakeTgd(
      "add-commutative",
      {MakeAtom("addM", {Var("M"), Var("N"), Var("R")})},
      {MakeAtom("addM", {Var("N"), Var("M"), Var("R")})});
  ChaseEngine engine(&inst, {comm});
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(inst.FactsOf(add).size(), 2u);
  EXPECT_LE(stats->rounds, 3);
}

// Functional EGDs (I_multiM style) must merge result classes.
TEST(ChaseEngineTest, FunctionalEgdMergesResults) {
  Instance inst;
  int32_t mul = inst.InternPredicate("multiM");
  NodeId m = inst.FreshNull(), n = inst.FreshNull();
  NodeId r1 = inst.FreshNull(), r2 = inst.FreshNull();
  inst.AddFact(mul, {m, n, r1}, Derivation{}, true, nullptr);
  inst.AddFact(mul, {m, n, r2}, Derivation{}, true, nullptr);
  Constraint functional = MakeEgd(
      "I_multiM",
      {MakeAtom("multiM", {Var("M"), Var("N"), Var("R1")}),
       MakeAtom("multiM", {Var("M"), Var("N"), Var("R2")})},
      {{Var("R1"), Var("R2")}});
  ChaseEngine engine(&inst, {functional});
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(inst.Find(r1), inst.Find(r2));
  EXPECT_EQ(inst.FactsOf(mul).size(), 1u);  // Facts fused after the merge.
}

// EGDs whose equalities land on two distinct constants make the instance
// unsatisfiable; Run must surface the error.
TEST(ChaseEngineTest, ConstantClashIsUnsatisfiable) {
  Instance inst;
  int32_t name = inst.InternPredicate("name");
  NodeId m = inst.FreshNull();
  inst.AddFact(name, {m, inst.InternConstant("a")}, Derivation{}, true,
               nullptr);
  inst.AddFact(name, {m, inst.InternConstant("b")}, Derivation{}, true,
               nullptr);
  Constraint key = MakeEgd("name-key",
                           {MakeAtom("name", {Var("M"), Var("X")}),
                            MakeAtom("name", {Var("M"), Var("Y")})},
                           {{Var("X"), Var("Y")}});
  ChaseEngine engine(&inst, {key});
  auto stats = engine.Run();
  EXPECT_FALSE(stats.ok());
}

// EGD on constants in the conclusion (det(I) = 1 style): merging a null with
// a constant succeeds.
TEST(ChaseEngineTest, EgdEquatesNullWithConstant) {
  Instance inst;
  int32_t det = inst.InternPredicate("det");
  NodeId i = inst.FreshNull();
  NodeId d = inst.FreshNull();
  int32_t identity = inst.InternPredicate("identity");
  inst.AddFact(identity, {i}, Derivation{}, true, nullptr);
  inst.AddFact(det, {i, d}, Derivation{}, true, nullptr);
  Constraint c = MakeEgd("det-identity",
                         {MakeAtom("identity", {Var("I")}),
                          MakeAtom("det", {Var("I"), Var("D")})},
                         {{Var("D"), Cst("1")}});
  ChaseEngine engine(&inst, {c});
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(inst.IsConstant(d));
  EXPECT_EQ(inst.ConstantValue(d), "1");
}

// The Prune_prov gate must be able to veto applications.
TEST(ChaseEngineTest, GateSkipsApplications) {
  Instance inst;
  int32_t p = inst.InternPredicate("p");
  NodeId a = inst.FreshNull();
  inst.AddFact(p, {a}, Derivation{}, true, nullptr);
  Constraint grow = MakeTgd("grow", {MakeAtom("p", {Var("X")})},
                            {MakeAtom("q", {Var("X")})});
  ChaseEngine engine(&inst, {grow});
  engine.set_gate([](int32_t, const Binding&, const std::vector<FactId>&) {
    return false;
  });
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pruned_applications, 1);
  EXPECT_EQ(inst.FactsOf(inst.LookupPredicate("q")).size(), 0u);
}

// Fact budget stops a diverging chase (successor-style constraint).
TEST(ChaseEngineTest, BudgetStopsDivergingChase) {
  Instance inst;
  int32_t p = inst.InternPredicate("succ");
  NodeId a = inst.FreshNull(), b = inst.FreshNull();
  inst.AddFact(p, {a, b}, Derivation{}, true, nullptr);
  Constraint diverge = MakeTgd(
      "diverge", {MakeAtom("succ", {Var("X"), Var("Y")})},
      {MakeAtom("succ", {Var("Y"), Var("Z")})});
  ChaseOptions options;
  options.max_facts = 50;
  options.max_rounds = 1000;
  ChaseEngine engine(&inst, {diverge}, options);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->budget_exhausted);
  EXPECT_LE(inst.num_facts(), 51);
}

// Facts-added observer sees every new fact.
TEST(ChaseEngineTest, ObserverSeesAdditions) {
  Instance inst;
  int32_t p = inst.InternPredicate("p");
  NodeId a = inst.FreshNull();
  inst.AddFact(p, {a}, Derivation{}, true, nullptr);
  Constraint grow = MakeTgd("grow", {MakeAtom("p", {Var("X")})},
                            {MakeAtom("q", {Var("X"), Var("Z")})});
  ChaseEngine engine(&inst, {grow});
  int64_t seen = 0;
  engine.set_facts_added_observer(
      [&seen](const std::vector<FactId>& ids) { seen += ids.size(); });
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(seen, 1);
}

// Associativity-style constraint on a 3-chain yields both parenthesizations
// but terminates (the classic HADAD stress case, Example 7.2's shape).
TEST(ChaseEngineTest, AssociativityOnChainTerminates) {
  Instance inst;
  int32_t mul = inst.InternPredicate("multiM");
  NodeId m = inst.FreshNull(), n = inst.FreshNull();
  NodeId r1 = inst.FreshNull(), r2 = inst.FreshNull();
  // (M N) M encoded: multiM(M, N, R1), multiM(R1, M, R2).
  inst.AddFact(mul, {m, n, r1}, Derivation{}, true, nullptr);
  inst.AddFact(mul, {r1, m, r2}, Derivation{}, true, nullptr);
  Constraint assoc = MakeTgd(
      "mul-associative",
      {MakeAtom("multiM", {Var("A"), Var("B"), Var("R1")}),
       MakeAtom("multiM", {Var("R1"), Var("C"), Var("R2")})},
      {MakeAtom("multiM", {Var("B"), Var("C"), Var("R3")}),
       MakeAtom("multiM", {Var("A"), Var("R3"), Var("R2")})});
  Constraint functional = MakeEgd(
      "I_multiM",
      {MakeAtom("multiM", {Var("M"), Var("N"), Var("R1")}),
       MakeAtom("multiM", {Var("M"), Var("N"), Var("R2")})},
      {{Var("R1"), Var("R2")}});
  ChaseEngine engine(&inst, {assoc, functional});
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->budget_exhausted);
  // The alternative association M (N M) must now be present: some fact
  // multiM(N, M, X) and multiM(M, X, R2).
  bool found = false;
  FindHomomorphisms(
      {MakeAtom("multiM", {Var("N"), Var("M"), Var("X")}),
       MakeAtom("multiM", {Var("M"), Var("X"), Var("R")})},
      inst,
      {{"N", inst.Find(n)}, {"M", inst.Find(m)}, {"R", inst.Find(r2)}},
      [&](const Binding&, const std::vector<FactId>&) {
        found = true;
        return false;
      });
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace hadad::chase
