// The mutable data layer: workspace versioning (epochs/generation/
// snapshots), row-append primitives, the append-delta maintenance policy,
// and api::Session::Update/Append/Remove propagating through the plan
// cache, optimizer facts, user views, and adaptive views — with snapshot
// isolation for concurrent queries.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "engine/evaluator.h"
#include "engine/workspace.h"
#include "la/parser.h"
#include "matrix/generate.h"
#include "matrix/matrix.h"
#include "views/adaptive.h"
#include "views/maintenance.h"

namespace hadad {
namespace {

la::ExprPtr Parse(const std::string& text) {
  auto e = la::ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return e.value();
}

matrix::Matrix Constant(int64_t rows, int64_t cols, double v) {
  matrix::DenseMatrix m(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) m.At(r, c) = v;
  }
  return matrix::Matrix(std::move(m));
}

// ---------------------------------------------------------------------------
// Workspace versioning
// ---------------------------------------------------------------------------

TEST(WorkspaceVersioningTest, MutationsBumpEpochsAndGeneration) {
  engine::Workspace ws;
  EXPECT_EQ(ws.generation(), 0);
  EXPECT_EQ(ws.EpochOf("A"), engine::Workspace::kNeverStored);

  ws.Put("A", Constant(2, 2, 1.0));
  ws.Put("B", Constant(2, 2, 2.0));
  const int64_t a0 = ws.EpochOf("A");
  const int64_t b0 = ws.EpochOf("B");
  EXPECT_GT(a0, 0);
  EXPECT_GT(b0, a0);
  EXPECT_EQ(ws.generation(), b0);

  // Update bumps the touched entry only.
  ASSERT_TRUE(ws.Update("A", Constant(3, 3, 5.0)).ok());
  EXPECT_GT(ws.EpochOf("A"), a0);
  EXPECT_EQ(ws.EpochOf("B"), b0);
  EXPECT_EQ(ws.Find("A")->rows(), 3);

  // Append grows in place and bumps.
  const int64_t a1 = ws.EpochOf("A");
  ASSERT_TRUE(ws.Append("A", Constant(2, 3, 7.0)).ok());
  EXPECT_GT(ws.EpochOf("A"), a1);
  EXPECT_EQ(ws.Find("A")->rows(), 5);
  EXPECT_EQ(ws.Find("A")->At(4, 2), 7.0);

  // Unknown names and shape mismatches are surfaced, not applied.
  EXPECT_FALSE(ws.Update("Z", Constant(1, 1, 0.0)).ok());
  EXPECT_FALSE(ws.Append("A", Constant(1, 9, 0.0)).ok());

  // Erase drops the epoch record (bounding the map under transient-name
  // churn); a snapshot that stamped the live epoch reads never-stored,
  // which is != the stamp — stale, as required.
  engine::WorkspaceSnapshot snap = ws.SnapshotFor({"A"});
  EXPECT_TRUE(ws.Erase("A"));
  EXPECT_FALSE(ws.Has("A"));
  EXPECT_EQ(ws.EpochOf("A"), engine::Workspace::kNeverStored);
  EXPECT_FALSE(ws.SnapshotCurrent(snap));
  // Re-binding continues from the monotone generation: the stamp stays
  // stale rather than accidentally matching.
  ws.Put("A", Constant(1, 1, 0.0));
  EXPECT_FALSE(ws.SnapshotCurrent(snap));
}

TEST(WorkspaceVersioningTest, TruncateRowsInvertsAppend) {
  Rng rng(8);
  for (bool sparse : {false, true}) {
    matrix::Matrix base = sparse ? matrix::RandomSparse(rng, 7, 5, 0.4)
                                 : matrix::RandomDense(rng, 7, 5);
    matrix::Matrix copy = base;
    matrix::Matrix rows = matrix::RandomDense(rng, 3, 5);
    ASSERT_TRUE(matrix::AppendRows(&copy, rows).ok());
    ASSERT_TRUE(matrix::TruncateRows(&copy, 7).ok());
    EXPECT_TRUE(copy.ApproxEquals(base, 0.0));
    EXPECT_EQ(copy.Nnz(), base.Nnz());
    EXPECT_FALSE(matrix::TruncateRows(&copy, 8).ok());
  }
}

TEST(WorkspaceVersioningTest, SnapshotsTrackOnlyTheirOwnLeaves) {
  engine::Workspace ws;
  ws.Put("A", Constant(2, 2, 1.0));
  ws.Put("B", Constant(2, 2, 2.0));
  ws.Put("C", Constant(2, 2, 3.0));

  engine::WorkspaceSnapshot snap = ws.SnapshotFor({"A", "B"});
  EXPECT_TRUE(ws.SnapshotCurrent(snap));

  // Mutating an unrelated entry leaves the snapshot current even though
  // the generation moved.
  ASSERT_TRUE(ws.Update("C", Constant(2, 2, 9.0)).ok());
  EXPECT_GT(ws.generation(), snap.generation);
  EXPECT_TRUE(ws.SnapshotCurrent(snap));

  // Mutating a stamped leaf invalidates.
  ASSERT_TRUE(ws.Update("A", Constant(2, 2, 4.0)).ok());
  EXPECT_FALSE(ws.SnapshotCurrent(snap));
}

TEST(WorkspaceVersioningTest, TakeMovesValueOutAndBumps) {
  engine::Workspace ws;
  ws.Put("V", Constant(4, 4, 2.5));
  engine::WorkspaceSnapshot snap = ws.SnapshotFor({"V"});
  std::optional<matrix::Matrix> taken = ws.Take("V");
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->At(3, 3), 2.5);
  EXPECT_FALSE(ws.Has("V"));
  EXPECT_FALSE(ws.SnapshotCurrent(snap));
  EXPECT_FALSE(ws.Take("V").has_value());
}

// ---------------------------------------------------------------------------
// Row-append primitives
// ---------------------------------------------------------------------------

TEST(AppendRowsTest, DenseSparseAndMixedRepresentations) {
  Rng rng(7);
  matrix::Matrix dense = matrix::RandomDense(rng, 5, 3);
  matrix::Matrix extra = matrix::RandomDense(rng, 2, 3);
  matrix::Matrix dense_grown = dense;
  ASSERT_TRUE(matrix::AppendRows(&dense_grown, extra).ok());
  ASSERT_EQ(dense_grown.rows(), 7);
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(dense_grown.At(r, c), dense.At(r, c));
    }
  }
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(dense_grown.At(5 + r, c), extra.At(r, c));
    }
  }

  // Sparse base keeps CSR storage; dense rows are converted on the way in.
  matrix::Matrix sparse = matrix::RandomSparse(rng, 6, 4, 0.4);
  matrix::Matrix sparse_rows = matrix::RandomSparse(rng, 3, 4, 0.4);
  matrix::Matrix sparse_grown = sparse;
  ASSERT_TRUE(matrix::AppendRows(&sparse_grown, sparse_rows).ok());
  ASSERT_TRUE(sparse_grown.is_sparse());
  ASSERT_EQ(sparse_grown.rows(), 9);
  EXPECT_EQ(sparse_grown.Nnz(), sparse.Nnz() + sparse_rows.Nnz());
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_EQ(sparse_grown.At(6 + r, c), sparse_rows.At(r, c));
    }
  }
  matrix::Matrix mixed = sparse;
  matrix::Matrix dense_rows = matrix::RandomDense(rng, 2, 4);
  ASSERT_TRUE(matrix::AppendRows(&mixed, dense_rows).ok());
  EXPECT_TRUE(mixed.is_sparse());
  EXPECT_EQ(mixed.At(7, 1), dense_rows.At(1, 1));

  // Column mismatch is an error, not a crash; zero rows is a no-op.
  matrix::Matrix bad = matrix::RandomDense(rng, 1, 9);
  EXPECT_FALSE(matrix::AppendRows(&dense_grown, bad).ok());
  ASSERT_TRUE(
      matrix::AppendRows(&dense_grown, matrix::Matrix::Zero(0, 3)).ok());
  EXPECT_EQ(dense_grown.rows(), 7);
}

// ---------------------------------------------------------------------------
// Append-delta maintenance policy
// ---------------------------------------------------------------------------

TEST(BuildAppendDeltaTest, RecognizesTheAdditiveFamily) {
  auto delta = [](const std::string& def) {
    return views::BuildAppendDelta(Parse(def), "A", "D");
  };
  // Additive forms substitute A -> D.
  EXPECT_EQ(la::ToString(*delta("colSums(A)")), "colSums(D)");
  EXPECT_EQ(la::ToString(*delta("sum(A)")), "sum(D)");
  EXPECT_EQ(la::ToString(*delta("t(A) %*% A")), "t(D) %*% D");
  EXPECT_EQ(la::ToString(*delta("t(A %*% C) %*% (A %*% C)")),
            "t(D %*% C) %*% (D %*% C)");
  EXPECT_EQ(la::ToString(*delta("colSums(A) + sum(A)")),
            "colSums(D) + sum(D)");
  EXPECT_EQ(la::ToString(*delta("2 %*% colSums(A)")), "2 %*% colSums(D)");
  // An A-free addend contributes no delta but does not break additivity.
  EXPECT_EQ(la::ToString(*delta("colSums(A) + colSums(B)")), "colSums(D)");

  // Non-additive forms are rejected (full recompute / invalidation).
  EXPECT_FALSE(delta("A").has_value());                // Grows, not adds.
  EXPECT_FALSE(delta("A %*% A").has_value());         // Inner dim changes.
  EXPECT_FALSE(delta("t(A) %*% C").has_value());      // C rows can't grow.
  EXPECT_FALSE(delta("rowSums(A)").has_value());      // Output grows.
  EXPECT_FALSE(delta("inv(A)").has_value());
  EXPECT_FALSE(delta("colSums(B)").has_value());      // A-free.
  EXPECT_FALSE(delta("sum(A) %*% colSums(A)").has_value());
}

TEST(BuildAppendDeltaTest, DeltaMatchesFullRecompute) {
  Rng rng(11);
  const std::vector<std::string> defs = {
      "colSums(A)", "sum(A)", "t(A) %*% A", "t(A %*% C) %*% (A %*% C)",
      "(2 %*% colSums(A)) + colSums(B)"};
  matrix::Matrix a = matrix::RandomDense(rng, 12, 4);
  matrix::Matrix c = matrix::RandomDense(rng, 4, 3);
  matrix::Matrix b = matrix::RandomDense(rng, 5, 4);
  matrix::Matrix extra = matrix::RandomDense(rng, 6, 4);

  for (const std::string& def_text : defs) {
    la::ExprPtr def = Parse(def_text);
    auto delta_expr = views::BuildAppendDelta(def, "A", "D");
    ASSERT_TRUE(delta_expr.has_value()) << def_text;

    engine::Workspace ws;
    ws.Put("A", a);
    ws.Put("B", b);
    ws.Put("C", c);
    ws.Put("D", extra);
    auto old_value = engine::Execute(*def, ws);
    ASSERT_TRUE(old_value.ok()) << def_text;
    auto delta_value = engine::Execute(**delta_expr, ws);
    ASSERT_TRUE(delta_value.ok()) << def_text;
    auto incremental = matrix::Add(*old_value, *delta_value);
    ASSERT_TRUE(incremental.ok()) << def_text;

    ASSERT_TRUE(ws.Append("A", extra).ok());
    auto full = engine::Execute(*def, ws);
    ASSERT_TRUE(full.ok()) << def_text;
    EXPECT_TRUE(incremental->ApproxEquals(*full, 1e-9)) << def_text;
  }
}

// ---------------------------------------------------------------------------
// Session mutation: plan cache + optimizer propagation
// ---------------------------------------------------------------------------

constexpr char kQuery[] = "colSums(M %*% N)";

TEST(SessionMutationTest, UpdateRederivesCachedPlanBitIdentical) {
  Rng rng(21);
  matrix::Matrix m0 = matrix::RandomDense(rng, 20, 8);
  matrix::Matrix n = matrix::RandomDense(rng, 8, 12);
  matrix::Matrix m1 = matrix::RandomSparse(rng, 16, 8, 0.3);  // New shape/rep.

  auto session =
      api::SessionBuilder().Put("M", m0).Put("N", n).Build().value();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(session->Run(kQuery).ok());
  }
  api::SessionStats before = session->stats();
  EXPECT_EQ(before.prepares, 1);
  EXPECT_EQ(before.cache_hits, 1);

  ASSERT_TRUE(session->Update("M", m1).ok());
  auto after_update = session->Run(kQuery);
  ASSERT_TRUE(after_update.ok());

  // The previously cached plan re-derived (one more optimizer invocation)
  // and the result is bit-identical to a fresh session on the new data.
  api::SessionStats after = session->stats();
  EXPECT_EQ(after.prepares, 2);
  EXPECT_EQ(after.data_mutations, 1);
  auto fresh =
      api::SessionBuilder().Put("M", m1).Put("N", n).Build().value();
  auto expected = fresh->Run(kQuery);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(after_update->ApproxEquals(*expected, 0.0));

  // Warm again on the new data.
  ASSERT_TRUE(session->Run(kQuery).ok());
  EXPECT_EQ(session->stats().prepares, 2);
}

TEST(SessionMutationTest, UnrelatedMutationKeepsPlansWarm) {
  Rng rng(22);
  auto session = api::SessionBuilder()
                     .Put("M", matrix::RandomDense(rng, 10, 6))
                     .Put("N", matrix::RandomDense(rng, 6, 10))
                     .Put("C", matrix::RandomDense(rng, 4, 4))
                     .Build()
                     .value();
  ASSERT_TRUE(session->Run(kQuery).ok());
  ASSERT_EQ(session->stats().prepares, 1);

  // C is not a leaf of the cached plan: its epoch is irrelevant.
  ASSERT_TRUE(session->Update("C", matrix::RandomDense(rng, 9, 9)).ok());
  ASSERT_TRUE(session->Append("C", matrix::RandomDense(rng, 1, 9)).ok());
  ASSERT_TRUE(session->Run(kQuery).ok());
  api::SessionStats stats = session->stats();
  EXPECT_EQ(stats.prepares, 1);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.data_mutations, 2);
}

TEST(SessionPutTest, IntroducesNewNameAfterBuild) {
  Rng rng(26);
  auto session = api::SessionBuilder()
                     .Put("M", matrix::RandomDense(rng, 10, 6))
                     .Put("N", matrix::RandomDense(rng, 6, 10))
                     .Build()
                     .value();

  // Z did not exist at Build time: before Put, plans over it cannot derive.
  EXPECT_FALSE(session->Run("colSums(Z)").ok());
  matrix::Matrix z = matrix::RandomDense(rng, 12, 8);
  ASSERT_TRUE(session->Put("Z", z).ok());
  EXPECT_EQ(session->stats().data_mutations, 1);

  // The new base executes and matches a direct evaluation.
  auto got = session->Run("colSums(Z)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  engine::Workspace ws;
  ws.Put("Z", z);
  auto want = engine::Execute(*Parse("colSums(Z)"), ws);
  ASSERT_TRUE(want.ok());
  EXPECT_TRUE(got->ApproxEquals(*want, 0.0));

  // The optimizer saw the base facts, not just the workspace value: shape
  // checking rejects a dimension-invalid composition at prepare time.
  EXPECT_FALSE(session->Prepare("Z %*% Z").ok());  // 12x8 * 12x8.
  EXPECT_TRUE(session->Prepare("t(Z) %*% Z").ok());

  // The name is now a first-class mutation target.
  ASSERT_TRUE(session->Append("Z", matrix::RandomDense(rng, 2, 8)).ok());
  EXPECT_EQ(session->workspace().Find("Z")->rows(), 14);
  ASSERT_TRUE(session->Remove("Z").ok());
  EXPECT_FALSE(session->Run("colSums(Z)").ok());
}

TEST(SessionPutTest, UnrelatedWarmPlansStayCached) {
  Rng rng(27);
  auto session = api::SessionBuilder()
                     .Put("M", matrix::RandomDense(rng, 10, 6))
                     .Put("N", matrix::RandomDense(rng, 6, 10))
                     .Build()
                     .value();
  ASSERT_TRUE(session->Run(kQuery).ok());
  ASSERT_EQ(session->stats().prepares, 1);

  // Introducing a brand-new name cannot stale any cached plan: no plan
  // prepared before the Put can reference it (Prepare fails on unknown
  // names), so the warm path survives without a re-derive.
  ASSERT_TRUE(session->Put("Z", matrix::RandomDense(rng, 4, 4)).ok());
  ASSERT_TRUE(session->Run(kQuery).ok());
  api::SessionStats stats = session->stats();
  EXPECT_EQ(stats.prepares, 1);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.data_mutations, 1);
}

TEST(SessionPutTest, ExistingNameTakesUpdateSemantics) {
  Rng rng(28);
  matrix::Matrix a0 = matrix::RandomDense(rng, 8, 4);
  matrix::Matrix a1 = matrix::RandomDense(rng, 6, 4);
  auto session = api::SessionBuilder()
                     .Put("A", a0)
                     .AddView("G", "t(A) %*% A")
                     .Build()
                     .value();

  // Put over an existing base is a full Update: the dependent view
  // refreshes, exactly as a fresh session over the new data would have it.
  ASSERT_TRUE(session->Put("A", a1).ok());
  auto fresh = api::SessionBuilder()
                   .Put("A", a1)
                   .AddView("G", "t(A) %*% A")
                   .Build()
                   .value();
  auto got = session->Run("G");
  auto want = fresh->Run("G");
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_TRUE(got->ApproxEquals(*want, 0.0));

  // Derived and reserved names are rejected, and nothing is applied.
  EXPECT_FALSE(session->Put("G", Constant(4, 4, 1.0)).ok());
  EXPECT_FALSE(session->Put("", Constant(1, 1, 0.0)).ok());
  EXPECT_FALSE(session->Put("__delta_rows", Constant(1, 1, 0.0)).ok());
  EXPECT_EQ(session->stats().data_mutations, 1);
}

TEST(SessionMutationTest, AppendRefreshesUserViewsIncrementally) {
  Rng rng(23);
  matrix::Matrix a = matrix::RandomDense(rng, 30, 5);
  matrix::Matrix extra = matrix::RandomDense(rng, 9, 5);

  auto session = api::SessionBuilder()
                     .Put("A", a)
                     .AddView("G", "t(A) %*% A")
                     .AddView("S", "colSums(A)")
                     .Build()
                     .value();
  ASSERT_TRUE(session->Append("A", extra).ok());

  matrix::Matrix grown = a;
  ASSERT_TRUE(matrix::AppendRows(&grown, extra).ok());
  auto fresh = api::SessionBuilder()
                   .Put("A", grown)
                   .AddView("G", "t(A) %*% A")
                   .AddView("S", "colSums(A)")
                   .Build()
                   .value();
  for (const char* view : {"G", "S"}) {
    auto got = session->Run(view);
    auto want = fresh->Run(view);
    ASSERT_TRUE(got.ok() && want.ok()) << view;
    EXPECT_TRUE(got->ApproxEquals(*want, 1e-9)) << view;
  }
}

TEST(SessionMutationTest, UpdateCascadesThroughChainedViews) {
  Rng rng(24);
  matrix::Matrix a0 = matrix::RandomDense(rng, 10, 4);
  matrix::Matrix a1 = matrix::RandomDense(rng, 14, 4);

  // V2 references V1, which references A: an update of A refreshes both.
  auto session = api::SessionBuilder()
                     .Put("A", a0)
                     .AddView("V1", "colSums(A)")
                     .AddView("V2", "t(V1) %*% V1")
                     .Build()
                     .value();
  ASSERT_TRUE(session->Run("V2").ok());
  ASSERT_TRUE(session->Update("A", a1).ok());

  auto fresh = api::SessionBuilder()
                   .Put("A", a1)
                   .AddView("V1", "colSums(A)")
                   .AddView("V2", "t(V1) %*% V1")
                   .Build()
                   .value();
  auto got = session->Run("V2");
  auto want = fresh->Run("V2");
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_TRUE(got->ApproxEquals(*want, 0.0));
}

TEST(SessionMutationTest, ValidationRejectsBeforeApplying) {
  Rng rng(25);
  auto session = api::SessionBuilder()
                     .Put("X", matrix::RandomInvertible(rng, 6))
                     .Put("Y", matrix::RandomDense(rng, 6, 3))
                     .AddView("V", "inv(X)")
                     .Build()
                     .value();

  // Unknown / derived names.
  EXPECT_FALSE(session->Update("nope", Constant(1, 1, 0.0)).ok());
  EXPECT_FALSE(session->Update("V", Constant(6, 6, 0.0)).ok());
  EXPECT_FALSE(session->Remove("V").ok());
  // A view references X: removal is blocked, and an update that breaks the
  // view's shape contract (inv of a non-square) is rejected up front.
  EXPECT_FALSE(session->Remove("X").ok());
  EXPECT_FALSE(session->Update("X", Constant(3, 5, 1.0)).ok());
  // Appending rows to X would make it non-square under inv(): rejected.
  EXPECT_FALSE(session->Append("X", Constant(2, 6, 1.0)).ok());
  // Column mismatch.
  EXPECT_FALSE(session->Append("Y", Constant(2, 9, 1.0)).ok());
  // Nothing was applied: X is still intact and the session still serves.
  EXPECT_EQ(session->stats().data_mutations, 0);
  EXPECT_EQ(session->workspace().Find("X")->rows(), 6);
  EXPECT_TRUE(session->Run("V %*% X").ok());

  // Y has no dependent views: removal works, plans over it then fail.
  ASSERT_TRUE(session->Run("colSums(Y)").ok());
  ASSERT_TRUE(session->Remove("Y").ok());
  EXPECT_FALSE(session->Run("colSums(Y)").ok());
  EXPECT_TRUE(session->Run("V %*% X").ok());

  // Workspace names with the reserved '__delta' prefix are rejected at
  // Build — the refresh machinery owns them.
  EXPECT_FALSE(api::SessionBuilder()
                   .Put("__delta_rows", Constant(1, 1, 0.0))
                   .Build()
                   .ok());
}

TEST(SessionMutationTest, RuntimeRefreshFailureRollsBackAtomically) {
  // inv(X) passes the shape dry-run for any square update, but evaluation
  // fails on a singular matrix — the whole mutation must roll back, never
  // leaving the new X paired with a stale view. V0 registers before V and
  // refreshes successfully first, so the rollback also has to restore an
  // already-refreshed view and its optimizer catalog entry (5x5, not the
  // 4x4 the aborted update briefly installed).
  Rng rng(26);
  matrix::Matrix x0 = matrix::RandomInvertible(rng, 5);
  auto session = api::SessionBuilder()
                     .Put("X", x0)
                     .AddView("V0", "X %*% X")
                     .AddView("V", "inv(X)")
                     .Build()
                     .value();
  auto v_before = session->Run("V");
  ASSERT_TRUE(v_before.ok());

  matrix::Matrix singular = matrix::Matrix::Zero(4, 4);
  Status failed = session->Update("X", singular);
  ASSERT_FALSE(failed.ok());

  // The base kept its old value (not the singular one), both views still
  // match it, and nothing counts as a mutation.
  EXPECT_TRUE(session->workspace().Find("X")->ApproxEquals(x0, 0.0));
  auto v_after = session->Run("V");
  ASSERT_TRUE(v_after.ok());
  EXPECT_TRUE(v_after->ApproxEquals(*v_before, 0.0));
  EXPECT_EQ(session->stats().data_mutations, 0);
  // Optimizer facts rolled back with the values: a query mixing V0 with X
  // only type-checks if V0's catalog entry is 5x5 again.
  auto mixed = session->Run("V0 + X");
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  auto expected =
      matrix::Add(matrix::Multiply(x0, x0).value(), x0).value();
  EXPECT_TRUE(mixed->ApproxEquals(expected, 1e-9));
  // And the session still accepts a valid update afterwards.
  ASSERT_TRUE(session->Update("X", matrix::RandomInvertible(rng, 4)).ok());
  EXPECT_TRUE(session->Run("V %*% X").ok());
}

// ---------------------------------------------------------------------------
// Adaptive views under mutation
// ---------------------------------------------------------------------------

constexpr char kAdaptivePipeline[] = "(t(X) %*% X) + R";

struct AdaptiveFixture {
  std::shared_ptr<api::Session> session;
  matrix::Matrix x;
  matrix::Matrix r;
};

AdaptiveFixture MakeAdaptiveFixture(int64_t min_hits = 2) {
  Rng rng(31);
  AdaptiveFixture f;
  f.x = matrix::RandomDense(rng, 40, 10);
  f.r = matrix::RandomDense(rng, 10, 10);
  views::AdaptiveOptions options;
  options.budget_bytes = 1 << 20;
  options.min_hits = min_hits;
  options.synchronous = true;
  f.session = api::SessionBuilder()
                  .Put("X", f.x)
                  .Put("R", f.r)
                  .AdaptiveViews(options)
                  .Build()
                  .value();
  return f;
}

TEST(AdaptiveMutationTest, UpdateInvalidatesDependentViews) {
  AdaptiveFixture f = MakeAdaptiveFixture();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(f.session->Run(kAdaptivePipeline).ok());
  }
  ASSERT_GE(f.session->stats().adaptive_views_created, 1);
  ASSERT_FALSE(f.session->adaptive()->StoredViews().empty());

  Rng rng(32);
  matrix::Matrix x1 = matrix::RandomDense(rng, 25, 10);
  ASSERT_TRUE(f.session->Update("X", x1).ok());

  // Every stored view referenced X: all invalidated, optimizer retracted,
  // budget invariant intact.
  api::SessionStats stats = f.session->stats();
  EXPECT_GE(stats.adaptive_views_invalidated, 1);
  EXPECT_TRUE(f.session->adaptive()->StoredViews().empty());
  EXPECT_TRUE(f.session->optimizer().views().empty());
  EXPECT_EQ(stats.adaptive_bytes_in_use, 0);
  EXPECT_LE(stats.adaptive_bytes_in_use, stats.adaptive_budget_bytes);

  // Serving continues, bit-identical to a fresh session on the new data.
  auto fresh =
      api::SessionBuilder().Put("X", x1).Put("R", f.r).Build().value();
  auto expected = fresh->Run(kAdaptivePipeline);
  ASSERT_TRUE(expected.ok());
  auto got = f.session->Run(kAdaptivePipeline);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->ApproxEquals(*expected, 0.0));
}

TEST(AdaptiveMutationTest, AppendDeltaRefreshMatchesFullRecompute) {
  AdaptiveFixture f = MakeAdaptiveFixture();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(f.session->Run(kAdaptivePipeline).ok());
  }
  std::vector<views::StoredView> stored = f.session->adaptive()->StoredViews();
  ASSERT_FALSE(stored.empty());

  Rng rng(33);
  matrix::Matrix extra = matrix::RandomDense(rng, 15, 10);
  ASSERT_TRUE(f.session->Append("X", extra).ok());
  f.session->WaitForAdaptiveViews();

  // t(X) %*% X is append-additive in X: the view was refreshed in place
  // (V ← V + t(Δ)Δ), not recomputed or dropped.
  api::SessionStats stats = f.session->stats();
  EXPECT_GE(stats.adaptive_views_refreshed, 1);
  std::vector<views::StoredView> after = f.session->adaptive()->StoredViews();
  ASSERT_EQ(after.size(), stored.size());
  EXPECT_LE(stats.adaptive_bytes_in_use, stats.adaptive_budget_bytes);

  // The refreshed value matches a full recomputation at 1e-9, and serving
  // agrees with a fresh session on the grown data.
  matrix::Matrix grown = f.x;
  ASSERT_TRUE(matrix::AppendRows(&grown, extra).ok());
  for (const views::StoredView& v : after) {
    engine::Workspace scratch;
    scratch.Put("X", grown);
    scratch.Put("R", f.r);
    auto full = engine::Execute(*v.definition, scratch);
    ASSERT_TRUE(full.ok());
    const matrix::Matrix* resident = f.session->workspace().Find(v.name);
    ASSERT_NE(resident, nullptr);
    EXPECT_TRUE(resident->ApproxEquals(*full, 1e-9));
  }
  auto fresh =
      api::SessionBuilder().Put("X", grown).Put("R", f.r).Build().value();
  auto expected = fresh->Run(kAdaptivePipeline);
  auto got = f.session->Run(kAdaptivePipeline);
  ASSERT_TRUE(expected.ok() && got.ok());
  EXPECT_TRUE(got->ApproxEquals(*expected, 1e-9));
}

// ---------------------------------------------------------------------------
// Concurrency: snapshot isolation (run under TSan in CI)
// ---------------------------------------------------------------------------

TEST(MutationConcurrencyTest, RunsNeverSeeHalfAppliedUpdates) {
  // A is uniform with value v per version; colSums(A %*% B) with all-ones B
  // is then uniform with value rows * cols * v. A torn read would produce a
  // non-uniform result or a value outside the legal set.
  constexpr int64_t kRows = 24;
  constexpr int64_t kCols = 6;
  constexpr int kVersions = 20;
  auto session = api::SessionBuilder()
                     .Put("A", Constant(kRows, kCols, 1.0))
                     .Put("B", Constant(kCols, 4, 1.0))
                     .Put("Other", Constant(3, 2, 0.0))
                     .Build()
                     .value();

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto result = session->Run("colSums(A %*% B)");
        if (!result.ok()) {
          ++violations;
          continue;
        }
        const double first = result->At(0, 0);
        bool uniform = true;
        for (int64_t c = 0; c < result->cols(); ++c) {
          if (result->At(0, c) != first) uniform = false;
        }
        const double unit = static_cast<double>(kRows * kCols);
        const double version = first / unit;
        const bool legal = version >= 1.0 && version <= kVersions &&
                           version == static_cast<int>(version);
        if (!uniform || !legal) ++violations;
      }
    });
  }
  // Writer: full updates of A interleaved with appends to an unrelated
  // matrix (exercising the per-leaf invalidation path concurrently).
  for (int v = 2; v <= kVersions; ++v) {
    ASSERT_TRUE(session->Update("A", Constant(kRows, kCols, v)).ok());
    ASSERT_TRUE(session->Append("Other", Constant(1, 2, 1.0)).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(session->stats().data_mutations, 2 * (kVersions - 1));
}

TEST(MutationConcurrencyTest, AdaptiveInstallsRaceMutationsSafely) {
  Rng rng(41);
  matrix::Matrix x = matrix::RandomDense(rng, 24, 8);
  matrix::Matrix r = matrix::RandomDense(rng, 8, 8);
  views::AdaptiveOptions options;
  options.budget_bytes = 1 << 20;
  options.min_hits = 2;
  options.synchronous = false;  // Real background worker.
  auto session = api::SessionBuilder()
                     .Put("X", x)
                     .Put("R", r)
                     .AdaptiveViews(options)
                     .Build()
                     .value();

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        if (!session->Run(kAdaptivePipeline).ok()) ++failures;
      }
    });
  }
  std::thread writer([&] {
    Rng wrng(42);
    for (int i = 0; i < 10; ++i) {
      matrix::Matrix extra = matrix::RandomDense(wrng, 2, 8);
      if (!session->Append("X", extra).ok()) ++failures;
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  session->WaitForAdaptiveViews();
  EXPECT_EQ(failures.load(), 0);

  // Converged state serves correctly: compare against a fresh session on
  // the final data (1e-9: delta refreshes legitimately reorder FP sums).
  auto fresh = api::SessionBuilder()
                   .Put("X", *session->workspace().Find("X"))
                   .Put("R", r)
                   .Build()
                   .value();
  auto expected = fresh->Run(kAdaptivePipeline);
  auto got = session->Run(kAdaptivePipeline);
  ASSERT_TRUE(expected.ok() && got.ok());
  EXPECT_TRUE(got->ApproxEquals(*expected, 1e-9));
  api::SessionStats stats = session->stats();
  EXPECT_LE(stats.adaptive_bytes_in_use, stats.adaptive_budget_bytes);
}

}  // namespace
}  // namespace hadad
