// The adaptive materialized-view subsystem (src/views/): workload
// monitoring, advisor ranking, the budgeted store, catalog drop/size
// accounting, and the end-to-end Session loop — a repeated query gets
// auto-rewritten onto an advisor-created view with identical results.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "engine/evaluator.h"
#include "engine/view_catalog.h"
#include "engine/workspace.h"
#include "la/parser.h"
#include "matrix/generate.h"
#include "pacb/optimizer.h"
#include "views/adaptive.h"
#include "views/advisor.h"
#include "views/view_store.h"
#include "views/workload_monitor.h"

namespace hadad::views {
namespace {

la::ExprPtr Parse(const std::string& text) {
  auto e = la::ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return e.value();
}

// ---------------------------------------------------------------------------
// WorkloadMonitor
// ---------------------------------------------------------------------------

TEST(WorkloadMonitorTest, CountsEachSubexpressionOncePerRun) {
  WorkloadMonitor monitor;
  // t(X) %*% X appears twice in one run; hash-consed DAG semantics count
  // it once per execution.
  la::ExprPtr e = Parse("(t(X) %*% X) + (t(X) %*% X)");
  monitor.Observe(e, nullptr);
  monitor.Observe(e, nullptr);

  std::vector<SubexprStat> snapshot = monitor.Snapshot();
  int64_t product_hits = 0;
  int64_t root_hits = 0;
  for (const SubexprStat& s : snapshot) {
    if (s.canonical == la::ToString(Parse("t(X) %*% X"))) {
      product_hits = s.hits;
    }
    if (s.canonical == la::ToString(e)) root_hits = s.hits;
  }
  EXPECT_EQ(product_hits, 2);
  EXPECT_EQ(root_hits, 2);
  EXPECT_EQ(monitor.observed_runs(), 2);
  // Leaves are never candidates.
  for (const SubexprStat& s : snapshot) {
    EXPECT_FALSE(s.expr->is_leaf()) << s.canonical;
  }
}

TEST(WorkloadMonitorTest, AttributesMeasuredSecondsFromOpTimings) {
  WorkloadMonitor monitor;
  engine::ExecStats stats;
  stats.op_timings.push_back({"%*%", 2, 0.2});  // 0.1s per product.
  stats.op_timings.push_back({"t", 1, 0.05});
  monitor.Observe(Parse("t(X) %*% X"), &stats);

  for (const SubexprStat& s : monitor.Snapshot()) {
    if (s.canonical == la::ToString(Parse("t(X) %*% X"))) {
      EXPECT_NEAR(s.measured_seconds, 0.15, 1e-12);  // product + transpose.
    }
  }
}

TEST(WorkloadMonitorTest, ForgetDropsSubtreesButKeepsParents) {
  WorkloadMonitor monitor;
  monitor.Observe(Parse("(t(X) %*% X) + R"), nullptr);
  monitor.Observe(Parse("t(X) %*% Y"), nullptr);
  monitor.Forget(Parse("t(X) %*% X"));

  bool saw_parent = false;
  for (const SubexprStat& s : monitor.Snapshot()) {
    EXPECT_NE(s.canonical, la::ToString(Parse("t(X) %*% X")));
    EXPECT_NE(s.canonical, la::ToString(Parse("t(X)")));
    if (s.canonical == la::ToString(Parse("(t(X) %*% X) + R"))) {
      saw_parent = true;
    }
  }
  EXPECT_TRUE(saw_parent);
  // A forgotten subexpression still computed elsewhere re-accumulates.
  monitor.Observe(Parse("t(X) %*% Y"), nullptr);
  bool transpose_back = false;
  for (const SubexprStat& s : monitor.Snapshot()) {
    if (s.canonical == la::ToString(Parse("t(X)"))) {
      transpose_back = true;
      EXPECT_EQ(s.hits, 1);  // Re-counted from scratch.
    }
  }
  EXPECT_TRUE(transpose_back);
}

TEST(WorkloadMonitorTest, DecayHalvesIdleWeightsByHalfLife) {
  // Half-life of 2 observed runs. Without decay, weight == hits exactly.
  WorkloadMonitor no_decay(16, 0.0);
  WorkloadMonitor decayed(16, 2.0);
  for (int i = 0; i < 4; ++i) {
    no_decay.Observe(Parse("t(A) %*% A"), nullptr);
    decayed.Observe(Parse("t(A) %*% A"), nullptr);
  }
  auto weight_of = [](const WorkloadMonitor& m, const std::string& text) {
    for (const SubexprStat& s : m.Snapshot()) {
      if (s.canonical == text) return s.weight;
    }
    return -1.0;
  };
  const std::string gram = la::ToString(Parse("t(A) %*% A"));
  EXPECT_DOUBLE_EQ(weight_of(no_decay, gram), 4.0);
  // Consecutive runs decay by 2^(-1/2) between observations:
  // w = ((1*d + 1)*d + 1)*d + 1 with d = 2^(-1/2).
  const double d = std::exp2(-0.5);
  EXPECT_NEAR(weight_of(decayed, gram), ((d + 1) * d + 1) * d + 1, 1e-12);

  // Four idle runs (a different workload) halve the gram's weight twice;
  // the raw hit count never decays, and the fresh workload overtakes.
  for (int i = 0; i < 4; ++i) {
    no_decay.Observe(Parse("B %*% B"), nullptr);
    decayed.Observe(Parse("B %*% B"), nullptr);
  }
  const std::string fresh = la::ToString(Parse("B %*% B"));
  EXPECT_DOUBLE_EQ(weight_of(no_decay, gram), 4.0);
  EXPECT_NEAR(weight_of(decayed, gram),
              (((d + 1) * d + 1) * d + 1) * 0.25, 1e-12);
  EXPECT_GT(weight_of(decayed, fresh), weight_of(decayed, gram));
  for (const SubexprStat& s : decayed.Snapshot()) {
    if (s.canonical == gram) {
      EXPECT_EQ(s.hits, 4);
    }
  }
}

TEST(WorkloadMonitorTest, SnapshotIsDeterministicallyOrdered) {
  WorkloadMonitor monitor;
  monitor.Observe(Parse("t(B) %*% A"), nullptr);
  monitor.Observe(Parse("t(A)"), nullptr);
  std::vector<SubexprStat> a = monitor.Snapshot();
  std::vector<SubexprStat> b = monitor.Snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].canonical, b[i].canonical);
  }
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LT(a[i - 1].canonical, a[i].canonical);
  }
}

// ---------------------------------------------------------------------------
// ViewAdvisor
// ---------------------------------------------------------------------------

la::MetaCatalog AdvisorCatalog() {
  la::MetaCatalog catalog;
  la::MatrixMeta x;
  x.rows = 200;
  x.cols = 10;
  x.nnz = 2000;
  catalog["X"] = x;
  la::MatrixMeta r;
  r.rows = 10;
  r.cols = 10;
  r.nnz = 100;
  catalog["R"] = r;
  return catalog;
}

// Hand-built monitor output: weight mirrors hits (no decay), measured 0.
std::vector<SubexprStat> AdvisorInput() {
  std::vector<SubexprStat> stats;
  stats.push_back({la::ToString(Parse("(t(X) %*% X) + R")),
                   Parse("(t(X) %*% X) + R"), 5, 5.0, 0.0, 0});
  stats.push_back({la::ToString(Parse("t(X) %*% X")), Parse("t(X) %*% X"), 5,
                   5.0, 0.0, 0});
  stats.push_back({la::ToString(Parse("t(X)")), Parse("t(X)"), 5, 5.0, 0.0,
                   0});
  stats.push_back(
      {la::ToString(Parse("R + R")), Parse("R + R"), 1, 1.0, 0.0, 0});
  return stats;
}

TEST(ViewAdvisorTest, RankingIsDeterministic) {
  ViewAdvisor advisor(nullptr);
  AdvisorOptions options;
  options.min_hits = 3;
  la::MetaCatalog catalog = AdvisorCatalog();

  auto first = advisor.Recommend(AdvisorInput(), catalog, nullptr, options);
  auto second = advisor.Recommend(AdvisorInput(), catalog, nullptr, options);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].canonical, second[i].canonical);
    EXPECT_DOUBLE_EQ(first[i].score, second[i].score);
  }
  // Scores are non-increasing (ranked), and the whole-pipeline candidate
  // with the largest recompute-per-byte wins.
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_GE(first[i - 1].score, first[i].score);
  }
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first[0].canonical, la::ToString(Parse("(t(X) %*% X) + R")));
}

TEST(ViewAdvisorTest, MinHitsAndSkipFilterCandidates) {
  ViewAdvisor advisor(nullptr);
  AdvisorOptions options;
  options.min_hits = 3;
  la::MetaCatalog catalog = AdvisorCatalog();

  auto recs = advisor.Recommend(AdvisorInput(), catalog, nullptr, options);
  for (const Recommendation& r : recs) {
    EXPECT_NE(r.canonical, la::ToString(Parse("R + R")));  // Only 1 hit.
    EXPECT_GE(r.hits, options.min_hits);
  }

  const std::string product = la::ToString(Parse("t(X) %*% X"));
  auto skipped = advisor.Recommend(
      AdvisorInput(), catalog, nullptr, options,
      [&product](const SubexprStat& s) { return s.canonical == product; });
  for (const Recommendation& r : skipped) {
    EXPECT_NE(r.canonical, product);
  }
  EXPECT_EQ(skipped.size() + 1, recs.size());
}

TEST(ViewAdvisorTest, MeasuredSecondsOverrideSizeEstimates) {
  ViewAdvisor advisor(nullptr);
  AdvisorOptions options;
  options.min_hits = 1;
  la::MetaCatalog catalog = AdvisorCatalog();
  // By size estimates t(X) %*% X dominates t(X); measured timings say the
  // transpose is (pathologically) more expensive — measurements win.
  std::vector<SubexprStat> stats;
  stats.push_back({la::ToString(Parse("t(X) %*% X")), Parse("t(X) %*% X"), 4,
                   4.0, 0.04, 0});
  stats.push_back({la::ToString(Parse("t(X)")), Parse("t(X)"), 4, 4.0, 40.0,
                   0});
  auto recs = advisor.Recommend(stats, catalog, nullptr, options);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].canonical, la::ToString(Parse("t(X)")));
}

TEST(ViewAdvisorTest, ThresholdsOnDecayedWeightNotRawHits) {
  ViewAdvisor advisor(nullptr);
  AdvisorOptions options;
  options.min_hits = 3;
  la::MetaCatalog catalog = AdvisorCatalog();
  // Five raw hits but a decayed weight below min_hits: a long-idle
  // workload no longer qualifies.
  std::vector<SubexprStat> stats;
  stats.push_back({la::ToString(Parse("t(X) %*% X")), Parse("t(X) %*% X"), 5,
                   1.5, 0.0, 0});
  EXPECT_TRUE(advisor.Recommend(stats, catalog, nullptr, options).empty());
}

// ---------------------------------------------------------------------------
// engine::ViewCatalog size accounting + Drop
// ---------------------------------------------------------------------------

TEST(ViewCatalogTest, TracksBytesAndDrops) {
  Rng rng(3);
  engine::Workspace ws;
  ws.Put("M", matrix::RandomDense(rng, 8, 4));
  engine::ViewCatalog catalog(&ws);

  ASSERT_TRUE(catalog.MaterializeText("V", "t(M)").ok());
  ASSERT_TRUE(catalog.MaterializeText("W", "M %*% t(M)").ok());
  const engine::ViewCatalog::Entry* v = catalog.FindEntry("V");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->bytes, 8 * 4 * static_cast<int64_t>(sizeof(double)));
  EXPECT_EQ(catalog.total_bytes(),
            (8 * 4 + 8 * 8) * static_cast<int64_t>(sizeof(double)));

  ASSERT_TRUE(catalog.Drop("V").ok());
  EXPECT_FALSE(ws.Has("V"));
  EXPECT_TRUE(ws.Has("W"));
  EXPECT_EQ(catalog.FindEntry("V"), nullptr);
  EXPECT_EQ(catalog.total_bytes(),
            8 * 8 * static_cast<int64_t>(sizeof(double)));

  Status missing = catalog.Drop("V");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  // Base matrices are not droppable through the catalog.
  EXPECT_EQ(catalog.Drop("M").code(), StatusCode::kNotFound);
  EXPECT_TRUE(ws.Has("M"));
}

// ---------------------------------------------------------------------------
// ViewStore budget + eviction
// ---------------------------------------------------------------------------

StoredView MakeMeta(const std::string& name, const std::string& def_text,
                    double benefit) {
  StoredView v;
  v.name = name;
  v.canonical = la::ToString(Parse(def_text));
  v.definition = Parse(def_text);
  v.benefit = benefit;
  return v;
}

TEST(ViewStoreTest, NeverExceedsBudgetAndEvictsLowestBenefit) {
  engine::Workspace ws;
  constexpr int64_t kMatrixBytes = 10 * 10 * sizeof(double);  // 800 each.
  ViewStore store(&ws, /*budget_bytes=*/2 * kMatrixBytes);

  auto value = [] { return matrix::Matrix(matrix::DenseMatrix(10, 10)); };
  ASSERT_TRUE(store.Admit(MakeMeta("a", "t(A)", /*benefit=*/1.0), value())
                  .ok());
  ASSERT_TRUE(store.Admit(MakeMeta("b", "t(B)", /*benefit=*/50.0), value())
                  .ok());
  EXPECT_EQ(store.bytes_in_use(), 2 * kMatrixBytes);

  // A third view cannot fit without eviction; Admit alone refuses (budget
  // is a hard invariant)...
  Status full = store.Admit(MakeMeta("c", "t(C)", 10.0), value());
  EXPECT_FALSE(full.ok());
  EXPECT_LE(store.bytes_in_use(), store.budget_bytes());

  // ...and PlanAdmission picks the lowest-benefit victim.
  std::vector<std::string> evict;
  ASSERT_TRUE(store.PlanAdmission(kMatrixBytes, &evict));
  ASSERT_EQ(evict.size(), 1u);
  EXPECT_EQ(evict[0], "a");
  for (const std::string& name : evict) {
    ASSERT_TRUE(store.Evict(name).ok());
  }
  ASSERT_TRUE(store.Admit(MakeMeta("c", "t(C)", 10.0), value()).ok());
  EXPECT_LE(store.bytes_in_use(), store.budget_bytes());
  EXPECT_FALSE(store.ContainsName("a"));
  EXPECT_TRUE(store.ContainsName("b"));
  EXPECT_TRUE(store.ContainsName("c"));
  EXPECT_FALSE(ws.Has("a"));

  // A candidate bigger than the whole budget is inadmissible outright.
  EXPECT_FALSE(store.PlanAdmission(3 * kMatrixBytes, &evict));
}

TEST(ViewStoreTest, HitsWeightEvictionOrder) {
  engine::Workspace ws;
  constexpr int64_t kMatrixBytes = 10 * 10 * sizeof(double);
  ViewStore store(&ws, 2 * kMatrixBytes);
  auto value = [] { return matrix::Matrix(matrix::DenseMatrix(10, 10)); };
  // Equal admission benefit; runtime hits must break the tie.
  ASSERT_TRUE(store.Admit(MakeMeta("cold", "t(A)", 1.0), value()).ok());
  ASSERT_TRUE(store.Admit(MakeMeta("hot", "t(B)", 1.0), value()).ok());
  store.RecordHit("hot", 1);
  store.RecordHit("hot", 2);

  std::vector<std::string> evict;
  ASSERT_TRUE(store.PlanAdmission(kMatrixBytes, &evict));
  ASSERT_EQ(evict.size(), 1u);
  EXPECT_EQ(evict[0], "cold");
}

// ---------------------------------------------------------------------------
// pacb::Optimizer::RemoveView
// ---------------------------------------------------------------------------

TEST(OptimizerRemoveViewTest, RemovedViewsStopAnsweringQueries) {
  Rng rng(7);
  engine::Workspace ws;
  ws.Put("M", matrix::RandomDense(rng, 20, 6));
  ws.Put("N", matrix::RandomDense(rng, 6, 20));
  pacb::Optimizer optimizer(ws.BuildMetaCatalog());
  optimizer.SetData(&ws.data());
  ASSERT_TRUE(optimizer.AddViewText("V", "M %*% N").ok());

  auto with_view = optimizer.OptimizeText("M %*% N");
  ASSERT_TRUE(with_view.ok());
  EXPECT_EQ(la::ToString(with_view->best), "V");

  ASSERT_TRUE(optimizer.RemoveView("V").ok());
  EXPECT_FALSE(optimizer.catalog().contains("V"));
  auto without_view = optimizer.OptimizeText("M %*% N");
  ASSERT_TRUE(without_view.ok());
  EXPECT_EQ(la::ToString(without_view->best), "M %*% N");

  EXPECT_EQ(optimizer.RemoveView("V").code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// End-to-end: Session closes the loop
// ---------------------------------------------------------------------------

struct E2eData {
  matrix::Matrix x;
  matrix::Matrix r;
};

E2eData MakeE2eData() {
  Rng rng(21);
  return E2eData{matrix::RandomDense(rng, 80, 12),
                 matrix::RandomDense(rng, 12, 12)};
}

constexpr char kPipeline[] = "(t(X) %*% X) + R";

TEST(AdaptiveSessionTest, RepeatedQueryAutoMaterializesAndRewrites) {
  E2eData d = MakeE2eData();
  // View-free baseline for the ground truth.
  auto baseline =
      api::SessionBuilder().Put("X", d.x).Put("R", d.r).Build().value();
  auto expected = baseline->Run(kPipeline);
  ASSERT_TRUE(expected.ok());

  views::AdaptiveOptions options;
  options.budget_bytes = 1 << 20;
  options.min_hits = 2;
  options.synchronous = true;  // Deterministic single-threaded loop.
  auto session = api::SessionBuilder()
                     .Put("X", d.x)
                     .Put("R", d.r)
                     .AdaptiveViews(options)
                     .Build()
                     .value();

  // Run 1 and 2: executed as stated; run 2 crosses min_hits and (in
  // synchronous mode) installs the view before returning.
  for (int i = 0; i < 2; ++i) {
    auto result = session->Run(kPipeline);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->ApproxEquals(*expected, 0.0));  // Bit-identical.
  }
  api::SessionStats mid = session->stats();
  ASSERT_GE(mid.adaptive_views_created, 1);
  ASSERT_NE(session->adaptive(), nullptr);
  std::vector<StoredView> stored = session->adaptive()->StoredViews();
  ASSERT_FALSE(stored.empty());

  // Run 3: the plan cache notices the view-generation change, re-derives,
  // and the rewrite lands on the adaptive view — visible in the prepared
  // plan and Explain, with bit-identical results.
  auto result = session->Run(kPipeline);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(*expected, 0.0));

  auto prepared = session->Prepare(kPipeline);
  ASSERT_TRUE(prepared.ok());
  bool uses_adaptive_view = false;
  for (const StoredView& v : stored) {
    if (la::ToString(prepared->plan()).find(v.name) != std::string::npos) {
      uses_adaptive_view = true;
      EXPECT_NE(prepared->Explain().find(v.name), std::string::npos);
    }
  }
  EXPECT_TRUE(uses_adaptive_view)
      << "rewritten plan: " << la::ToString(prepared->plan());
  EXPECT_GE(session->stats().adaptive_view_hit_runs, 1);
  EXPECT_LE(session->stats().adaptive_bytes_in_use,
            session->stats().adaptive_budget_bytes);
}

TEST(AdaptiveSessionTest, StalePreparedQueryRederivesAfterViewLands) {
  E2eData d = MakeE2eData();
  auto baseline =
      api::SessionBuilder().Put("X", d.x).Put("R", d.r).Build().value();
  auto expected = baseline->Run(kPipeline);
  ASSERT_TRUE(expected.ok());

  views::AdaptiveOptions options;
  options.budget_bytes = 1 << 20;
  options.min_hits = 2;
  options.synchronous = true;
  auto session = api::SessionBuilder()
                     .Put("X", d.x)
                     .Put("R", d.r)
                     .AdaptiveViews(options)
                     .Build()
                     .value();

  auto prepared = session->Prepare(kPipeline);  // Derived pre-view.
  ASSERT_TRUE(prepared.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session->Run(kPipeline).ok());
  }
  ASSERT_GE(session->stats().adaptive_views_created, 1);
  // The stale handle still executes — against the refreshed plan, which
  // now scans the adaptive view — and stays bit-identical.
  const int64_t hit_runs_before = session->stats().adaptive_view_hit_runs;
  auto via_stale = prepared->Execute();
  ASSERT_TRUE(via_stale.ok());
  EXPECT_TRUE(via_stale->ApproxEquals(*expected, 0.0));
  EXPECT_GT(session->stats().adaptive_view_hit_runs, hit_runs_before);
}

TEST(AdaptiveSessionTest, BudgetIsNeverExceededUnderEvictionPressure) {
  Rng rng(5);
  api::SessionBuilder builder;
  for (int k = 0; k < 4; ++k) {
    builder.Put("R" + std::to_string(k), matrix::RandomDense(rng, 10, 10));
  }
  views::AdaptiveOptions options;
  // Room for two 10x10 results; four hot disjoint pipelines force the
  // store to evict.
  options.budget_bytes = 2 * 10 * 10 * sizeof(double) + 64;
  options.min_hits = 2;
  options.synchronous = true;
  auto session = builder.AdaptiveViews(options).Build().value();

  for (int round = 0; round < 4; ++round) {
    for (int k = 0; k < 4; ++k) {
      std::string text =
          "t(R" + std::to_string(k) + ") %*% R" + std::to_string(k);
      ASSERT_TRUE(session->Run(text).ok());
      api::SessionStats s = session->stats();
      EXPECT_LE(s.adaptive_bytes_in_use, s.adaptive_budget_bytes);
    }
  }
  api::SessionStats s = session->stats();
  EXPECT_GE(s.adaptive_views_created, 2);
  EXPECT_GE(s.adaptive_views_evicted, 1);
  EXPECT_LE(s.adaptive_bytes_in_use, s.adaptive_budget_bytes);
}

TEST(AdaptiveSessionTest, BackgroundMaterializationIsRaceSafe) {
  E2eData d = MakeE2eData();
  auto baseline =
      api::SessionBuilder().Put("X", d.x).Put("R", d.r).Build().value();
  std::vector<std::string> pipelines = {kPipeline, "t(X) %*% X",
                                        "(t(X) %*% X) %*% R", "t(R) + R"};
  std::vector<matrix::Matrix> expected;
  for (const std::string& text : pipelines) {
    auto r = baseline->Run(text);
    ASSERT_TRUE(r.ok()) << text;
    expected.push_back(*r);
  }

  views::AdaptiveOptions options;
  // Tight budget: concurrent installs and evictions race with serving.
  options.budget_bytes = 2 * 12 * 12 * sizeof(double) + 64;
  options.min_hits = 2;
  options.synchronous = false;  // Real background worker.
  auto session = api::SessionBuilder()
                     .Put("X", d.x)
                     .Put("R", d.r)
                     .AdaptiveViews(options)
                     .Build()
                     .value();

  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 16;
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRunsPerThread; ++i) {
        const size_t q = static_cast<size_t>(t + i) % pipelines.size();
        auto result = session->Run(pipelines[q]);
        if (!result.ok()) {
          ++failures;
        } else if (!result->ApproxEquals(expected[q], 1e-12)) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  session->WaitForAdaptiveViews();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  api::SessionStats s = session->stats();
  EXPECT_LE(s.adaptive_bytes_in_use, s.adaptive_budget_bytes);
  // Post-drain serving still agrees with the baseline.
  for (size_t q = 0; q < pipelines.size(); ++q) {
    auto result = session->Run(pipelines[q]);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->ApproxEquals(expected[q], 1e-12));
  }
}

// ---------------------------------------------------------------------------
// MVCC snapshot races: a mutation landing between a background evaluation
// and its install must discard the stale value, never install it.
// ---------------------------------------------------------------------------

// A manager over a raw Host whose evaluate hook can inject a conflicting
// base-data mutation mid-evaluation — deterministic reproduction of the
// writer-races-installer window.
struct RaceHarness {
  explicit RaceHarness(bool synchronous) {
    Rng rng(21);
    x0 = matrix::RandomDense(rng, 80, 12);
    conflict = matrix::RandomDense(rng, 80, 12);
    ws.Put("X", x0);
    optimizer.emplace(ws.BuildMetaCatalog());
    optimizer->SetData(&ws.data());

    AdaptiveViewManager::Host host;
    host.workspace = &ws;
    host.optimizer = &*optimizer;
    host.exec_catalog = nullptr;
    host.state_mu = &state_mu;
    host.evaluate = [this](const la::ExprPtr& def, engine::WorkspaceView wsv,
                           bool) -> Result<matrix::Matrix> {
      Result<matrix::Matrix> r = engine::Execute(*def, wsv);
      if (inject.exchange(false)) {
        // The writer proceeds while the evaluation's snapshot is pinned —
        // MVCC's whole point — and invalidates the stamped deps.
        common::WriterMutexLock lock(&state_mu);
        ws.Update("X", conflict);
      }
      return r;
    };
    host.on_views_changed = [] {};

    AdaptiveOptions options;
    options.min_hits = 2;
    options.synchronous = synchronous;
    manager.emplace(host, options, nullptr);
  }

  matrix::Matrix x0;
  matrix::Matrix conflict;
  engine::Workspace ws;
  std::optional<pacb::Optimizer> optimizer;
  common::SharedMutex state_mu;
  std::atomic<bool> inject{false};
  std::optional<AdaptiveViewManager> manager;
};

TEST(AdaptiveSnapshotRaceTest, StaleMaterializationIsDiscardedNotInstalled) {
  RaceHarness h(/*synchronous=*/true);
  la::ExprPtr def = Parse("t(X) %*% X");

  h.manager->OnExecution(def, nullptr);
  h.inject.store(true);
  h.manager->OnExecution(def, nullptr);  // Crosses min_hits; materializes.

  // The computed value described the pre-conflict X: discarded, with the
  // candidate neither installed nor blacklisted as a failure.
  AdaptiveViewStats stats = h.manager->stats();
  EXPECT_EQ(stats.views_created, 0);
  EXPECT_EQ(stats.materialize_failures, 0);
  EXPECT_EQ(stats.pending, 0);
  EXPECT_TRUE(h.manager->StoredViews().empty());

  // The workload may legitimately rebuild on the new data: a clean retry
  // (no injected conflict) installs.
  h.manager->OnExecution(def, nullptr);
  h.manager->OnExecution(def, nullptr);
  EXPECT_EQ(h.manager->stats().views_created, 1);
  ASSERT_EQ(h.manager->StoredViews().size(), 1u);

  // The installed value matches the post-conflict data exactly.
  auto expected = engine::Execute(*def, h.ws);
  ASSERT_TRUE(expected.ok());
  auto got = h.ws.Get(h.manager->StoredViews()[0].name);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE((*got)->ApproxEquals(*expected, 0.0));
}

TEST(AdaptiveSnapshotRaceTest, StaleDeltaRefreshIsDiscardedNotInstalled) {
  RaceHarness h(/*synchronous=*/false);  // Real background worker.
  la::ExprPtr def = Parse("t(X) %*% X");

  h.manager->OnExecution(def, nullptr);
  h.manager->OnExecution(def, nullptr);
  h.manager->Drain();
  ASSERT_EQ(h.manager->stats().views_created, 1);

  // Append to X and queue the incremental refresh (V ← V + t(Δ)Δ); the
  // delta evaluation then races a conflicting update of X.
  Rng rng(33);
  matrix::Matrix extra = matrix::RandomDense(rng, 15, 12);
  const std::string appended = "X";
  {
    common::WriterMutexLock lock(&h.state_mu);
    ASSERT_TRUE(h.ws.Append("X", extra).ok());
    h.inject.store(true);
    h.manager->OnDataMutation({}, &appended, &extra);
  }
  h.manager->Drain();

  // old_value + f(Δ) no longer describes the data: the refresh must be
  // discarded and counted with the invalidations.
  AdaptiveViewStats stats = h.manager->stats();
  EXPECT_EQ(stats.views_refreshed, 0);
  EXPECT_GE(stats.views_invalidated, 1);
  EXPECT_EQ(stats.pending, 0);
  EXPECT_TRUE(h.manager->StoredViews().empty());
}

// ---------------------------------------------------------------------------
// PreparedQuery compiled-plan caching (executor sessions)
// ---------------------------------------------------------------------------

TEST(CompiledPlanCacheTest, HitPathSkipsDagRecompilation) {
  Rng rng(17);
  auto session = api::SessionBuilder()
                     .Put("M", matrix::RandomDense(rng, 30, 8))
                     .Put("N", matrix::RandomDense(rng, 8, 30))
                     .Threads(1)
                     .Build()
                     .value();

  auto prepared = session->Prepare("(M %*% N) %*% M");
  ASSERT_TRUE(prepared.ok());
  auto first = prepared->Execute();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(session->stats().compiled_plans, 1);

  auto second = prepared->Execute();
  ASSERT_TRUE(second.ok());
  // Run() shares the cached PreparedPlan, so it reuses the same DAG too.
  ASSERT_TRUE(session->Run("(M %*% N) %*% M").ok());
  EXPECT_EQ(session->stats().compiled_plans, 1);
  EXPECT_TRUE(second->ApproxEquals(*first, 0.0));
}

}  // namespace
}  // namespace hadad::views
