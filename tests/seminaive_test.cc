// Semi-naive matching and the argument-position join index: the fast paths
// must produce exactly the matches the naive enumeration produces.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "chase/engine.h"
#include "chase/homomorphism.h"
#include "common/rng.h"

namespace hadad::chase {
namespace {

// Builds a random edge relation and compares full enumeration against the
// pivot-decomposed ranged enumeration used by semi-naive rounds.
TEST(RangedMatchingTest, PivotDecompositionCoversExactlyNewMatches) {
  Rng rng(3);
  Instance inst;
  int32_t e = inst.InternPredicate("edge");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 12; ++i) nodes.push_back(inst.FreshNull());
  auto add_edges = [&](int count) {
    for (int i = 0; i < count; ++i) {
      inst.AddFact(e,
                   {nodes[rng.NextBelow(nodes.size())],
                    nodes[rng.NextBelow(nodes.size())]},
                   Derivation{}, true, nullptr);
    }
  };
  add_edges(30);
  const FactId watermark = static_cast<FactId>(inst.num_facts());
  add_edges(20);

  std::vector<Atom> pattern = {MakeAtom("edge", {Var("X"), Var("Y")}),
                               MakeAtom("edge", {Var("Y"), Var("Z")})};
  auto key = [](const std::vector<FactId>& facts) {
    return std::to_string(facts[0]) + "," + std::to_string(facts[1]);
  };
  // All matches.
  std::set<std::string> all;
  FindHomomorphisms(pattern, inst, {}, [&](const Binding&,
                                           const std::vector<FactId>& f) {
    all.insert(key(f));
    return true;
  });
  // Old-only matches.
  std::set<std::string> old_only;
  {
    std::vector<FactRange> ranges(2);
    ranges[0].hi = watermark;
    ranges[1].hi = watermark;
    FindHomomorphismsRanged(pattern, inst, {}, ranges,
                            [&](const Binding&, const std::vector<FactId>& f) {
                              old_only.insert(key(f));
                              return true;
                            });
  }
  // Pivot decomposition of the new matches.
  std::set<std::string> pivoted;
  for (size_t pivot = 0; pivot < pattern.size(); ++pivot) {
    std::vector<FactRange> ranges(2);
    for (size_t i = 0; i < pivot; ++i) ranges[i].hi = watermark;
    ranges[pivot].lo = watermark;
    FindHomomorphismsRanged(pattern, inst, {}, ranges,
                            [&](const Binding&, const std::vector<FactId>& f) {
                              EXPECT_TRUE(pivoted.insert(key(f)).second)
                                  << "duplicate match across pivots";
                              return true;
                            });
  }
  // old ∪ pivoted-new = all, disjointly.
  EXPECT_EQ(old_only.size() + pivoted.size(), all.size());
  for (const std::string& k : pivoted) {
    EXPECT_TRUE(all.count(k));
    EXPECT_FALSE(old_only.count(k));
  }
}

TEST(ArgIndexTest, FactsWithFiltersByPositionAndNode) {
  Instance inst;
  int32_t p = inst.InternPredicate("p");
  NodeId a = inst.FreshNull();
  NodeId b = inst.FreshNull();
  inst.AddFact(p, {a, b}, Derivation{}, true, nullptr);
  inst.AddFact(p, {b, a}, Derivation{}, true, nullptr);
  inst.AddFact(p, {a, a}, Derivation{}, true, nullptr);
  EXPECT_EQ(inst.FactsWith(p, 0, a).size(), 2u);
  EXPECT_EQ(inst.FactsWith(p, 0, b).size(), 1u);
  EXPECT_EQ(inst.FactsWith(p, 1, a).size(), 2u);
  EXPECT_TRUE(inst.FactsWith(p, 0, inst.FreshNull()).empty());
}

TEST(ArgIndexTest, SurvivesRebuildAfterMerges) {
  Instance inst;
  int32_t p = inst.InternPredicate("p");
  NodeId a = inst.FreshNull();
  NodeId b = inst.FreshNull();
  NodeId c = inst.FreshNull();
  inst.AddFact(p, {a, c}, Derivation{}, true, nullptr);
  inst.AddFact(p, {b, c}, Derivation{}, true, nullptr);
  ASSERT_TRUE(inst.Merge(a, b).ok());
  inst.Rebuild();
  // Facts fused: one fact, indexed under the surviving root.
  EXPECT_EQ(inst.FactsWith(p, 0, inst.Find(a)).size(), 1u);
  EXPECT_EQ(inst.FactsWith(p, 0, inst.Find(b)).size(), 1u);
}

// The engine's semi-naive rounds must reach the same fixpoint as a
// max_rounds=1... full-match sequence. Transitive closure is the classic
// check (new facts join with old ones every round).
TEST(SemiNaiveEngineTest, TransitiveClosureMatchesNaiveFixpoint) {
  auto build = [](Instance& inst) {
    int32_t e = inst.InternPredicate("edge");
    std::vector<NodeId> nodes;
    for (int i = 0; i < 7; ++i) nodes.push_back(inst.FreshNull());
    for (int i = 0; i + 1 < 7; ++i) {
      inst.AddFact(e, {nodes[static_cast<size_t>(i)],
                       nodes[static_cast<size_t>(i) + 1]},
                   Derivation{}, true, nullptr);
    }
  };
  Constraint tc = MakeTgd("tc",
                          {MakeAtom("edge", {Var("X"), Var("Y")}),
                           MakeAtom("edge", {Var("Y"), Var("Z")})},
                          {MakeAtom("edge", {Var("X"), Var("Z")})});
  Instance inst;
  build(inst);
  ChaseEngine engine(&inst, {tc});
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  // Closure of a 7-node path: C(7,2) = 21 edges.
  EXPECT_EQ(inst.FactsOf(inst.LookupPredicate("edge")).size(), 21u);
}

}  // namespace
}  // namespace hadad::chase
