#include "api/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/evaluator.h"
#include "engine/profiles.h"
#include "engine/workspace.h"
#include "la/parser.h"
#include "matrix/generate.h"
#include "morpheus/generator.h"
#include "pacb/optimizer.h"

namespace hadad::api {
namespace {

struct TestData {
  matrix::Matrix m;
  matrix::Matrix n;
  matrix::Matrix c;
  matrix::Matrix v;
};

TestData MakeTestData() {
  Rng rng(11);
  return TestData{matrix::RandomDense(rng, 30, 8),
                  matrix::RandomDense(rng, 8, 30),
                  matrix::RandomInvertible(rng, 12),
                  matrix::RandomDense(rng, 8, 1)};
}

std::shared_ptr<Session> MakeSession() {
  TestData d = MakeTestData();
  auto session = SessionBuilder()
                     .Put("M", d.m)
                     .Put("N", d.n)
                     .Put("C", d.c)
                     .Put("v", d.v)
                     .Build();
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return *session;
}

// ---------------------------------------------------------------------------
// Builder validation
// ---------------------------------------------------------------------------

TEST(SessionBuilderTest, DuplicateNamesRejected) {
  TestData d = MakeTestData();
  auto session = SessionBuilder().Put("M", d.m).Put("M", d.n).Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(session.status().message().find("'M'"), std::string::npos);
}

TEST(SessionBuilderTest, ViewNameCollidingWithMatrixRejected) {
  TestData d = MakeTestData();
  auto session =
      SessionBuilder().Put("M", d.m).AddView("M", "t(M)").Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionBuilderTest, EmptyNameRejected) {
  TestData d = MakeTestData();
  auto session = SessionBuilder().Put("", d.m).Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionBuilderTest, MalformedViewDefinitionRejected) {
  TestData d = MakeTestData();
  auto session =
      SessionBuilder().Put("M", d.m).AddView("V", "t(M %*%").Build();
  ASSERT_FALSE(session.ok());
  // The error names the offending view.
  EXPECT_NE(session.status().message().find("'V'"), std::string::npos);
}

TEST(SessionBuilderTest, ViewOverUnknownMatrixRejected) {
  TestData d = MakeTestData();
  auto session =
      SessionBuilder().Put("M", d.m).AddView("V", "t(Q)").Build();
  EXPECT_FALSE(session.ok());
}

TEST(SessionBuilderTest, MorpheusJoinOverUnknownNamesRejected) {
  TestData d = MakeTestData();
  auto session = SessionBuilder()
                     .Put("T", d.m)
                     .AddMorpheusJoin({"T", "K", "U", "M"})
                     .Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kNotFound);
}

TEST(SessionBuilderTest, BuildersAreSingleUse) {
  TestData d = MakeTestData();
  SessionBuilder builder;
  builder.Put("M", d.m);
  ASSERT_TRUE(builder.Build().ok());
  auto second = builder.Build();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Prepare/Execute parity with the manual three-object flow
// ---------------------------------------------------------------------------

TEST(SessionTest, PrepareMatchesManualWorkspaceOptimizerEngineFlow) {
  const std::string pipeline = "(M %*% N) %*% M";
  TestData d = MakeTestData();

  // Manual expert flow: Workspace -> Optimizer -> Engine, hand-wired.
  engine::Workspace ws;
  ws.Put("M", d.m);
  ws.Put("N", d.n);
  ws.Put("C", d.c);
  ws.Put("v", d.v);
  pacb::Optimizer optimizer(ws.BuildMetaCatalog());
  optimizer.SetData(&ws.data());
  auto manual_rewrite = optimizer.OptimizeText(pipeline);
  ASSERT_TRUE(manual_rewrite.ok());
  engine::Engine engine(engine::Profile::kNaive, &ws);
  auto manual_result = engine.Run(manual_rewrite->best);
  ASSERT_TRUE(manual_result.ok());

  // Session flow over the same data.
  std::shared_ptr<Session> session = MakeSession();
  auto prepared = session->Prepare(pipeline);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  EXPECT_EQ(la::ToString(prepared->plan()),
            la::ToString(manual_rewrite->best));
  EXPECT_DOUBLE_EQ(prepared->rewrite().best_cost, manual_rewrite->best_cost);
  EXPECT_DOUBLE_EQ(prepared->rewrite().original_cost,
                   manual_rewrite->original_cost);

  auto session_result = prepared->Execute();
  ASSERT_TRUE(session_result.ok());
  EXPECT_TRUE(session_result->ApproxEquals(*manual_result, 1e-10));

  // ExecuteOriginal runs the pipeline as stated.
  auto as_stated = engine::Execute(*la::ParseExpression(pipeline).value(),
                                   session->workspace());
  ASSERT_TRUE(as_stated.ok());
  auto original = prepared->ExecuteOriginal();
  ASSERT_TRUE(original.ok());
  EXPECT_TRUE(original->ApproxEquals(*as_stated, 1e-10));
}

TEST(SessionTest, RunMatchesPreparedExecute) {
  std::shared_ptr<Session> session = MakeSession();
  auto prepared = session->Prepare("t(M %*% N)");
  ASSERT_TRUE(prepared.ok());
  auto via_prepare = prepared->Execute();
  auto via_run = session->Run("t(M %*% N)");
  ASSERT_TRUE(via_prepare.ok());
  ASSERT_TRUE(via_run.ok());
  EXPECT_TRUE(via_run->ApproxEquals(*via_prepare, 1e-12));
}

TEST(SessionTest, ErrorsSurfaceAsStatusNotCrashes) {
  std::shared_ptr<Session> session = MakeSession();
  EXPECT_FALSE(session->Run("t(M %*%").ok());        // Parse error.
  EXPECT_FALSE(session->Run("Q %*% M").ok());        // Unknown name.
  EXPECT_FALSE(session->Prepare("M %*% M").ok());    // Dim mismatch.
}

TEST(SessionTest, PreparedQueryKeepsSessionAlive) {
  std::shared_ptr<Session> session = MakeSession();
  auto prepared = session->Prepare("(M %*% N) %*% M");
  ASSERT_TRUE(prepared.ok());
  PreparedQuery query = *prepared;
  session.reset();  // Drop the caller's handle; the plan still executes.
  EXPECT_TRUE(query.Execute().ok());
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

TEST(SessionTest, ExplainReportsRewriteCostsAndChase) {
  std::shared_ptr<Session> session = MakeSession();
  auto prepared = session->Prepare("(M %*% N) %*% M");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->rewrite().improved);
  std::string explain = prepared->Explain();
  // Original (canonical form) and rewritten expressions.
  EXPECT_NE(explain.find(prepared->canonical_text()), std::string::npos);
  EXPECT_EQ(prepared->canonical_text(),
            la::ToString(la::ParseExpression("(M %*% N) %*% M").value()));
  EXPECT_NE(explain.find(la::ToString(prepared->plan())), std::string::npos);
  // γ estimates, RW_find, chase stats, alternatives.
  EXPECT_NE(explain.find("γ estimate"), std::string::npos);
  EXPECT_NE(explain.find("RW_find"), std::string::npos);
  EXPECT_NE(explain.find("rounds"), std::string::npos);
  EXPECT_NE(explain.find("alternatives"), std::string::npos);
}

TEST(SessionTest, ExplainMarksAlreadyOptimalPipelines) {
  std::shared_ptr<Session> session = MakeSession();
  auto prepared = session->Prepare("M");
  ASSERT_TRUE(prepared.ok());
  ASSERT_FALSE(prepared->rewrite().improved);
  EXPECT_NE(prepared->Explain().find("already optimal"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

TEST(SessionTest, SecondPrepareHitsTheCache) {
  std::shared_ptr<Session> session = MakeSession();
  auto first = session->Prepare("(M %*% N) %*% M");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache());

  auto second = session->Prepare("(M %*% N) %*% M");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache());
  // The plan object itself is shared, not re-derived.
  EXPECT_EQ(&second->rewrite(), &first->rewrite());

  SessionStats stats = session->stats();
  EXPECT_EQ(stats.prepares, 1);  // One optimizer invocation total.
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, 1);
}

TEST(SessionTest, CacheKeyIsTheCanonicalExpression) {
  std::shared_ptr<Session> session = MakeSession();
  // Redundant parentheses and whitespace canonicalize to the same plan.
  ASSERT_TRUE(session->Run("(M %*% N) %*% M").ok());
  ASSERT_TRUE(session->Run("((M %*% N)) %*%  M").ok());
  SessionStats stats = session->stats();
  EXPECT_EQ(stats.prepares, 1);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(session->plan_cache_size(), 1);
  // A different expression is a genuine miss.
  ASSERT_TRUE(session->Run("t(M %*% N)").ok());
  EXPECT_EQ(session->stats().cache_misses, 2);
  EXPECT_EQ(session->plan_cache_size(), 2);
}

TEST(SessionTest, SecondRunSkipsReoptimization) {
  std::shared_ptr<Session> session = MakeSession();
  ASSERT_TRUE(session->Run("(M %*% N) %*% M").ok());
  SessionStats cold = session->stats();
  EXPECT_EQ(cold.prepares, 1);
  EXPECT_EQ(cold.cache_hits, 0);

  ASSERT_TRUE(session->Run("(M %*% N) %*% M").ok());
  SessionStats warm = session->stats();
  EXPECT_EQ(warm.prepares, 1);  // No new optimizer invocation.
  EXPECT_EQ(warm.cache_hits, 1);
  EXPECT_EQ(warm.runs, 2);
}

TEST(SessionTest, ClearPlanCacheForcesReoptimization) {
  std::shared_ptr<Session> session = MakeSession();
  ASSERT_TRUE(session->Run("t(M %*% N)").ok());
  EXPECT_EQ(session->plan_cache_size(), 1);
  session->ClearPlanCache();
  EXPECT_EQ(session->plan_cache_size(), 0);
  ASSERT_TRUE(session->Run("t(M %*% N)").ok());
  EXPECT_EQ(session->stats().prepares, 2);
}

TEST(SessionTest, FailedPipelinesAreNotCached) {
  std::shared_ptr<Session> session = MakeSession();
  EXPECT_FALSE(session->Run("Q %*% M").ok());
  EXPECT_EQ(session->plan_cache_size(), 0);
}

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

TEST(SessionTest, ConcurrentRunsShareCachedPlans) {
  std::shared_ptr<Session> session = MakeSession();
  const std::vector<std::string> pipelines = {
      "(M %*% N) %*% M", "t(M %*% N)", "sum(M %*% N)", "t(N) %*% v"};
  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&session, &pipelines, &failures, t] {
      for (int i = 0; i < kRunsPerThread; ++i) {
        const std::string& text =
            pipelines[static_cast<size_t>(t + i) % pipelines.size()];
        if (!session->Run(text).ok()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  SessionStats stats = session->stats();
  EXPECT_EQ(stats.runs, kThreads * kRunsPerThread);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, kThreads * kRunsPerThread);
  // Every pipeline cached exactly once; racing misses may re-optimize but
  // never duplicate a cache entry.
  EXPECT_EQ(session->plan_cache_size(),
            static_cast<int64_t>(pipelines.size()));
  EXPECT_GE(stats.cache_hits, kThreads * kRunsPerThread - stats.prepares);
}

// ---------------------------------------------------------------------------
// Configuration pass-through
// ---------------------------------------------------------------------------

TEST(SessionTest, ViewsAreMaterializedAndReachableByRewrites) {
  TestData d = MakeTestData();
  auto session = SessionBuilder()
                     .Put("M", d.m)
                     .Put("N", d.n)
                     .AddView("V", "N %*% M")
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  // Materialized into the workspace...
  ASSERT_TRUE((*session)->workspace().Has("V"));
  auto direct = engine::Execute(*la::ParseExpression("N %*% M").value(),
                                (*session)->workspace());
  auto via_view = (*session)->Run("V");
  ASSERT_TRUE(via_view.ok());
  EXPECT_TRUE(via_view->ApproxEquals(*direct, 1e-10));
}

TEST(SessionTest, ViewsMayReferenceEarlierViews) {
  TestData d = MakeTestData();
  auto session = SessionBuilder()
                     .Put("M", d.m)
                     .Put("N", d.n)
                     .AddView("V1", "N %*% M")
                     .AddView("V2", "t(V1)")
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_TRUE((*session)->workspace().Has("V2"));
}

TEST(SessionTest, SmartProfileAppliesEngineRewrites) {
  TestData d = MakeTestData();
  auto session = SessionBuilder()
                     .Put("M", d.m)
                     .SetProfile(engine::Profile::kSmart)
                     .Build();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->engine().profile(), engine::Profile::kSmart);
}

TEST(SessionTest, NormalizedMatrixRoutesThroughMorpheus) {
  Rng rng(9);
  morpheus::PkFkConfig config;
  config.n_r = 40;
  config.d_s = 5;
  config.tuple_ratio = 4;
  config.feature_ratio = 2;
  morpheus::NormalizedMatrix nm = morpheus::GeneratePkFk(rng, config);
  auto materialized = nm.Materialize();
  ASSERT_TRUE(materialized.ok());
  const int64_t m_cols = nm.cols();

  auto session = SessionBuilder()
                     .Put("G", matrix::RandomDense(rng, m_cols, 6))
                     .AddNormalizedMatrix("M", std::move(nm))
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_NE((*session)->morpheus(), nullptr);

  // Factorized execution agrees with the denormalized ground truth.
  auto factorized = (*session)->Run("colSums(M %*% G)");
  ASSERT_TRUE(factorized.ok()) << factorized.status().ToString();
  engine::Workspace ground;
  ground.Put("M", *materialized);
  const matrix::Matrix* g = (*session)->workspace().Find("G");
  ASSERT_NE(g, nullptr);
  ground.Put("G", *g);
  auto expected = engine::Execute(
      *la::ParseExpression("colSums(M %*% G)").value(), ground);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(factorized->ApproxEquals(*expected, 1e-8));
}

TEST(SessionTest, ViewsMayReferenceNormalizedMatrices) {
  Rng rng(13);
  morpheus::PkFkConfig config;
  config.n_r = 40;
  config.d_s = 5;
  config.tuple_ratio = 4;
  config.feature_ratio = 2;
  morpheus::NormalizedMatrix nm = morpheus::GeneratePkFk(rng, config);
  auto materialized = nm.Materialize();
  ASSERT_TRUE(materialized.ok());

  // The view definition evaluates through the Morpheus engine at Build().
  auto session = SessionBuilder()
                     .AddNormalizedMatrix("M", std::move(nm))
                     .AddView("V", "colSums(M)")
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const matrix::Matrix* v = (*session)->workspace().Find("V");
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->ApproxEquals(matrix::ColSums(*materialized), 1e-8));
}

}  // namespace
}  // namespace hadad::api
