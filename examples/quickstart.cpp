// Quickstart: optimize and run one LA pipeline.
//
//   $ ./build/examples/quickstart
//
// Walks the full HADAD loop: put matrices in a workspace, build an
// optimizer over their metadata, rewrite a pipeline, and execute both
// versions to compare.

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  // 1. Data: M (4000 x 100) and N (100 x 4000), both dense.
  Rng rng(1);
  engine::Workspace ws;
  ws.Put("M", matrix::RandomDense(rng, 4000, 100));
  ws.Put("N", matrix::RandomDense(rng, 100, 4000));

  // 2. An optimizer over the workspace's metadata (shapes + non-zero
  //    counts). This is all HADAD needs — it never touches the data.
  pacb::Optimizer optimizer(ws.BuildMetaCatalog());

  // 3. The pipeline (MN)M from Example 7.2: evaluated as stated it builds a
  //    4000 x 4000 intermediate; reassociated it needs only 100 x 100.
  const std::string pipeline = "(M %*% N) %*% M";
  auto rewrite = optimizer.OptimizeText(pipeline);
  if (!rewrite.ok()) {
    std::printf("optimize failed: %s\n", rewrite.status().ToString().c_str());
    return 1;
  }
  std::printf("pipeline:  %s   (estimated cost %.0f)\n", pipeline.c_str(),
              rewrite->original_cost);
  std::printf("rewriting: %s   (estimated cost %.0f, found in %.1f ms)\n",
              la::ToString(rewrite->best).c_str(), rewrite->best_cost,
              rewrite->optimize_seconds * 1e3);

  // 4. Execute both and compare.
  engine::Engine engine(engine::Profile::kNaive, &ws);
  engine::ExecStats original_stats, rewrite_stats;
  auto original = engine.Run(la::ParseExpression(pipeline).value(),
                             &original_stats);
  auto rewritten = engine.Run(rewrite->best, &rewrite_stats);
  if (!original.ok() || !rewritten.ok()) return 1;
  std::printf("as stated: %.1f ms;  rewritten: %.1f ms;  speedup %.1fx;  "
              "results agree: %s\n",
              original_stats.seconds * 1e3, rewrite_stats.seconds * 1e3,
              original_stats.seconds / rewrite_stats.seconds,
              original->ApproxEquals(*rewritten, 1e-8) ? "yes" : "NO");
  return 0;
}
