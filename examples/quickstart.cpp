// Quickstart: optimize and run one LA pipeline through api::Session.
//
//   $ ./build/examples/quickstart
//
// One object is the whole loop: a SessionBuilder declares the data, and the
// frozen Session prepares (parse + PACB rewrite, once), explains, and
// executes pipelines. Every failure surfaces as a Status — no exceptions,
// no crashes on bad input.

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  // 1. Data: M (4000 x 100) and N (100 x 4000), both dense. Build() freezes
  //    the workspace, the optimizer over its metadata, and the engine.
  Rng rng(1);
  auto session = api::SessionBuilder()
                     .Put("M", matrix::RandomDense(rng, 4000, 100))
                     .Put("N", matrix::RandomDense(rng, 100, 4000))
                     .Build();
  if (!session.ok()) {
    std::printf("session failed: %s\n", session.status().ToString().c_str());
    return 1;
  }

  // 2. The pipeline (MN)M from Example 7.2: evaluated as stated it builds a
  //    4000 x 4000 intermediate; reassociated it needs only 100 x 100.
  //    Prepare() parses and rewrites once; parse errors come back as Status.
  const std::string pipeline = "(M %*% N) %*% M";
  auto prepared = (*session)->Prepare(pipeline);
  if (!prepared.ok()) {
    std::printf("prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  const pacb::RewriteResult& rewrite = prepared->rewrite();
  std::printf("pipeline:  %s   (estimated cost %.0f)\n", pipeline.c_str(),
              rewrite.original_cost);
  std::printf("rewriting: %s   (estimated cost %.0f, found in %.1f ms)\n",
              la::ToString(rewrite.best).c_str(), rewrite.best_cost,
              rewrite.optimize_seconds * 1e3);

  // 3. Execute both versions of the prepared plan and compare.
  engine::ExecStats original_stats, rewrite_stats;
  auto original = prepared->ExecuteOriginal(&original_stats);
  auto rewritten = prepared->Execute(&rewrite_stats);
  if (!original.ok() || !rewritten.ok()) return 1;
  std::printf("as stated: %.1f ms;  rewritten: %.1f ms;  speedup %.1fx;  "
              "results agree: %s\n",
              original_stats.seconds * 1e3, rewrite_stats.seconds * 1e3,
              original_stats.seconds / rewrite_stats.seconds,
              original->ApproxEquals(*rewritten, 1e-8) ? "yes" : "NO");

  // 4. The serving-path one-liner: Run() consults the session's plan cache,
  //    so the second call skips RW_find entirely.
  if (!(*session)->Run(pipeline).ok()) return 1;
  if (!(*session)->Run(pipeline).ok()) return 1;
  api::SessionStats stats = (*session)->stats();
  std::printf("plan cache: %lld optimizer call(s), %lld cache hit(s)\n",
              static_cast<long long>(stats.prepares),
              static_cast<long long>(stats.cache_hits));

  // 5. Malformed input never crashes the session.
  auto bad = (*session)->Run("t(M %*%");
  std::printf("parse error surfaces as Status: %s\n",
              bad.status().ToString().c_str());
  return 0;
}
