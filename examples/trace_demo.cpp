// End-to-end observability demo: a traced session runs a small analytics
// workload, then dumps (1) the EXPLAIN ANALYZE report for one pipeline,
// (2) the Prometheus-format metrics snapshot, and (3) the full Chrome
// trace-event JSON — load it at https://ui.perfetto.dev or
// chrome://tracing to see the span hierarchy (docs/OBSERVABILITY.md).
//
// Usage: trace_demo [trace-output.json]   (default: hadad_trace.json)
//
// CI runs this binary and validates the emitted trace with
// scripts/check_trace.py (one span per layer: session, cache, plan,
// compile, kernel, views).

#include <cstdio>
#include <string>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "hadad_trace.json";

  Rng rng(42);
  views::AdaptiveOptions adaptive;
  adaptive.min_hits = 2;
  adaptive.synchronous = true;  // Deterministic: materialize inline.
  auto built = api::SessionBuilder()
                   .Put("M", matrix::RandomDense(rng, 200, 200))
                   .Put("N", matrix::RandomDense(rng, 200, 200))
                   .Put("v", matrix::RandomDense(rng, 200, 1))
                   .AddView("Mt", "t(M)")
                   .Threads(2)
                   .AdaptiveViews(adaptive)
                   .Tracing()
                   .Build();
  if (!built.ok()) {
    std::printf("session failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<api::Session> session = *built;

  // A small workload: one pipeline repeated (plan-cache hits + enough
  // observations for the adaptive advisor), a second pipeline sharing a
  // subexpression, and one mutation (view refresh + propagation spans).
  const std::string pipeline = "t(N) %*% (M %*% N) %*% v";
  for (int i = 0; i < 4; ++i) {
    auto result = session->Run(pipeline);
    if (!result.ok()) {
      std::printf("run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    auto shared = session->Run("rowSums(M %*% N)");
    if (!shared.ok()) {
      std::printf("run failed: %s\n", shared.status().ToString().c_str());
      return 1;
    }
  }
  Status mutated = session->Update("M", matrix::RandomDense(rng, 200, 200));
  if (!mutated.ok()) {
    std::printf("update failed: %s\n", mutated.ToString().c_str());
    return 1;
  }
  if (!session->Run(pipeline).ok()) return 1;

  // --- EXPLAIN ANALYZE: the executed physical DAG with measured time ------
  auto prepared = session->Prepare(pipeline);
  if (!prepared.ok()) {
    std::printf("prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  auto report = prepared->ExplainAnalyze();
  if (!report.ok()) {
    std::printf("explain failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->c_str());

  // --- Metrics snapshot (Prometheus text format) --------------------------
  std::printf("%s\n", session->MetricsText().c_str());

  // --- Chrome trace-event export ------------------------------------------
  Status dumped = session->DumpTrace(trace_path);
  if (!dumped.ok()) {
    std::printf("trace dump failed: %s\n", dumped.ToString().c_str());
    return 1;
  }
  std::printf("trace: %lld spans (%lld dropped) -> %s\n",
              static_cast<long long>(session->trace()->span_count()),
              static_cast<long long>(session->trace()->dropped()),
              trace_path.c_str());
  return 0;
}
