// Hybrid analytics: the §2 Twitter/ALS scenario end to end.
//
// A relational stage joins User and Tweet tables into the feature matrix M
// and builds the ultra-sparse tweet-hashtag matrix N under a keyword +
// country selection. The analysis stage runs the ALS building block
// (u v^T - N) v. HADAD (i) pushes the filter-level selection into the
// relational stage and (ii) rewrites the pipeline to u (v^T v) - N v,
// exploiting distributivity and N's sparsity (14x in the paper).

#include <cstdio>

#include "common/timer.h"
#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  Rng rng(3);
  hybrid::DatasetConfig config;
  config.kind = hybrid::BenchmarkKind::kTwitter;
  config.num_entities = 20000;
  config.num_dims = 2000;
  config.num_categories = 300;
  config.facts_per_entity = 2.5;
  config.selection_fraction = 0.6;
  hybrid::Dataset dataset = hybrid::GenerateDataset(rng, config);

  // Original plan: relational stage without the level filter, filter in
  // LA-land, then the ALS step as stated.
  auto pre = hybrid::Preprocess(dataset, /*push_level_filter=*/false, 4.0);
  if (!pre.ok()) return 1;
  Timer fla_timer;
  matrix::Matrix nf = hybrid::FilterLevelAtMost(pre->n, 4.0);
  double qfla = fla_timer.ElapsedSeconds();
  std::printf("Q_RA built M (%lldx%lld) and N (%lldx%lld, %lld non-zeros) "
              "in %.1f ms; Q_FLA %.1f ms\n",
              static_cast<long long>(pre->m.rows()),
              static_cast<long long>(pre->m.cols()),
              static_cast<long long>(nf.rows()),
              static_cast<long long>(nf.cols()),
              static_cast<long long>(nf.Nnz()), pre->ra_seconds * 1e3,
              qfla * 1e3);

  const int64_t n_rows = nf.rows();
  const int64_t n_cols = nf.cols();
  auto session = api::SessionBuilder()
                     .Put("N", std::move(nf))
                     .Put("u", matrix::RandomDense(rng, n_rows, 1))
                     .Put("v", matrix::RandomDense(rng, n_cols, 1))
                     .Build();
  if (!session.ok()) {
    std::printf("session failed: %s\n", session.status().ToString().c_str());
    return 1;
  }

  const std::string als = "(u %*% t(v) - N) %*% v";
  auto prepared = (*session)->Prepare(als);
  if (!prepared.ok()) {
    std::printf("prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("ALS step:  %s\n", als.c_str());
  std::printf("rewriting: %s (RW_find %.1f ms)\n",
              la::ToString(prepared->plan()).c_str(),
              prepared->rewrite().optimize_seconds * 1e3);

  engine::ExecStats q_stats, rw_stats;
  auto a = prepared->ExecuteOriginal(&q_stats);
  auto b = prepared->Execute(&rw_stats);
  if (!a.ok() || !b.ok()) return 1;
  std::printf("Q_exec %.1f ms -> RW_exec %.1f ms (%.1fx); agree: %s "
              "(paper: 14x at 2Mx1000)\n",
              q_stats.seconds * 1e3, rw_stats.seconds * 1e3,
              q_stats.seconds / rw_stats.seconds,
              a->ApproxEquals(*b, 1e-6) ? "yes" : "NO");

  // HADAD's combined rewriting also pushes the level selection into Q_RA.
  auto pushed = hybrid::Preprocess(dataset, /*push_level_filter=*/true, 4.0);
  if (!pushed.ok()) return 1;
  std::printf("combined rewriting replaces Q_RA+Q_FLA (%.1f ms) with the "
              "pushed-selection Q_RA (%.1f ms)\n",
              (pre->ra_seconds + qfla) * 1e3, pushed->ra_seconds * 1e3);
  return 0;
}
