// Serving-layer demo (src/server/, docs/SERVER.md): one shared substrate
// (workspace + plan cache + 4-thread DAG pool) behind a server::Server,
// three named clients submitting concurrently, and one request with a
// deadline too tight for its query — it fails with the typed
// kDeadlineExceeded status while the dispatcher pool keeps serving.
// Finishes with the hadad_server_* metrics scraped off the shared session.
//
// CI runs this binary as the serving smoke step (scripts/ci.sh tier1).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "matrix/generate.h"
#include "server/server.h"

using namespace hadad;  // NOLINT

int main() {
  Rng rng(42);
  auto built = api::SessionBuilder()
                   .Put("M", matrix::RandomDense(rng, 300, 300, -0.1, 0.1))
                   .Put("N", matrix::RandomDense(rng, 300, 300, -0.1, 0.1))
                   .Threads(4)  // The shared DAG pool under every request.
                   .Build();
  if (!built.ok()) {
    std::printf("session failed: %s\n", built.status().ToString().c_str());
    return 1;
  }

  auto created = server::Server::Create(*built);
  if (!created.ok()) {
    std::printf("server failed: %s\n", created.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<server::Server> server = *created;

  // Three clients, each submitting its own mix against the shared
  // substrate — one plan cache and one workspace serve all of them.
  const char* client_queries[3] = {
      "colSums(M %*% N)",
      "t(N) %*% (M %*% N)",
      "rowSums((M %*% N) %*% t(N))",
  };
  std::vector<std::thread> workers;
  for (int c = 0; c < 3; ++c) {
    workers.emplace_back([&server, &client_queries, c] {
      auto client = server->Connect("client" + std::to_string(c));
      for (int i = 0; i < 4; ++i) {
        auto out = client->Run(client_queries[c]);
        if (!out.ok()) {
          std::printf("[%s] run failed: %s\n", client->name().c_str(),
                      out.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  std::printf("3 clients x 4 runs served; plan cache holds %lld plans\n",
              static_cast<long long>(server->session().plan_cache_size()));

  // One request whose deadline cannot fit its GEMM chain: the cooperative
  // cancel check inside the scheduler fails it with the typed status, and
  // the pool drains cleanly instead of wedging.
  server::RequestOptions hurried;
  hurried.deadline = std::chrono::milliseconds(5);
  auto impatient = server->Connect("impatient");
  auto bounded = impatient->Run(
      "M %*% (N %*% (M %*% (N %*% (M %*% N))))", hurried);
  if (bounded.ok() ||
      bounded.status().code() != StatusCode::kDeadlineExceeded) {
    std::printf("expected kDeadlineExceeded, got: %s\n",
                bounded.ok() ? "OK" : bounded.status().ToString().c_str());
    return 1;
  }
  std::printf("deadline-bounded request: %s\n",
              bounded.status().ToString().c_str());

  // The pool kept serving: the same client immediately succeeds.
  auto recovered = impatient->Run(client_queries[0]);
  if (!recovered.ok()) {
    std::printf("post-deadline run failed: %s\n",
                recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("pool drained cleanly; follow-up request served\n\n");

  // The serving metrics live in the shared session's registry.
  const std::string metrics = server->session().MetricsText();
  for (const char* name :
       {"hadad_server_requests_total", "hadad_server_deadline_exceeded_total",
        "hadad_server_queue_depth"}) {
    const size_t pos = metrics.find(std::string(name) + " ");
    if (pos != std::string::npos) {
      const size_t eol = metrics.find('\n', pos);
      std::printf("%s\n", metrics.substr(pos, eol - pos).c_str());
    }
  }
  server->Shutdown();
  return 0;
}
