// Factorized learning over a PK-FK join: HADAD + Morpheus (§2 and §9.2.1).
//
// Morpheus keeps the join output M = [T | K U] normalized and pushes LA
// operators through the factorization. On colSums(M N) it can only
// factorize the multiplication (big intermediate). HADAD first rewrites to
// colSums(M) N — enabling Morpheus's colSums pushdown, whose intermediate
// is a single row (125x in the paper).

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  Rng rng(9);
  morpheus::PkFkConfig config;
  config.n_r = 2000;        // Dimension-table rows.
  config.d_s = 20;          // Fact-table features.
  config.tuple_ratio = 15;  // nS = 30000.
  config.feature_ratio = 5; // dR = 100.
  morpheus::NormalizedMatrix nm = morpheus::GeneratePkFk(rng, config);
  std::printf("normalized matrix M: %lld x %lld = [T %lldx%lld | K U with "
              "U %lldx%lld]\n",
              static_cast<long long>(nm.rows()),
              static_cast<long long>(nm.cols()),
              static_cast<long long>(nm.t().rows()),
              static_cast<long long>(nm.t().cols()),
              static_cast<long long>(nm.u().rows()),
              static_cast<long long>(nm.u().cols()));

  engine::Workspace ws;
  ws.Put("G", matrix::RandomDense(rng, nm.cols(), 100));
  morpheus::MorpheusEngine morpheus_engine(&ws);
  morpheus_engine.Register("M", nm);

  la::MetaCatalog catalog = ws.BuildMetaCatalog();
  catalog["M"] = {.rows = nm.rows(), .cols = nm.cols(),
                  .nnz = static_cast<double>(nm.rows() * nm.cols())};
  pacb::Optimizer optimizer(catalog);

  const std::string pipeline = "colSums(M %*% G)";
  auto rewrite = optimizer.OptimizeText(pipeline);
  if (!rewrite.ok()) return 1;
  std::printf("pipeline:  %s\n", pipeline.c_str());
  std::printf("rewriting: %s (RW_find %.1f ms)\n",
              la::ToString(rewrite->best).c_str(),
              rewrite->optimize_seconds * 1e3);

  engine::ExecStats base_stats, hadad_stats;
  auto base = morpheus_engine.Run(la::ParseExpression(pipeline).value(),
                                  &base_stats);
  auto with_hadad = morpheus_engine.Run(rewrite->best, &hadad_stats);
  if (!base.ok() || !with_hadad.ok()) return 1;
  std::printf("Morpheus alone: %.1f ms (multiplication factorized, "
              "intermediate %lld x 100)\n",
              base_stats.seconds * 1e3, static_cast<long long>(nm.rows()));
  std::printf("with HADAD:     %.1f ms (colSums pushdown enabled, "
              "intermediate 1 x %lld)\n",
              hadad_stats.seconds * 1e3,
              static_cast<long long>(nm.cols()));
  std::printf("speedup %.1fx; results agree: %s (paper: up to 125x)\n",
              base_stats.seconds / hadad_stats.seconds,
              base->ApproxEquals(*with_hadad, 1e-6) ? "yes" : "NO");
  return 0;
}
