// Factorized learning over a PK-FK join: HADAD + Morpheus (§2 and §9.2.1).
//
// Morpheus keeps the join output M = [T | K U] normalized and pushes LA
// operators through the factorization. On colSums(M N) it can only
// factorize the multiplication (big intermediate). HADAD first rewrites to
// colSums(M) N — enabling Morpheus's colSums pushdown, whose intermediate
// is a single row (125x in the paper).

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  Rng rng(9);
  morpheus::PkFkConfig config;
  config.n_r = 2000;        // Dimension-table rows.
  config.d_s = 20;          // Fact-table features.
  config.tuple_ratio = 15;  // nS = 30000.
  config.feature_ratio = 5; // dR = 100.
  morpheus::NormalizedMatrix nm = morpheus::GeneratePkFk(rng, config);
  std::printf("normalized matrix M: %lld x %lld = [T %lldx%lld | K U with "
              "U %lldx%lld]\n",
              static_cast<long long>(nm.rows()),
              static_cast<long long>(nm.cols()),
              static_cast<long long>(nm.t().rows()),
              static_cast<long long>(nm.t().cols()),
              static_cast<long long>(nm.u().rows()),
              static_cast<long long>(nm.u().cols()));

  // Registering M as a normalized matrix routes the session's execution
  // through the Morpheus engine (factorized pushdowns where its rules
  // allow) while the optimizer sees M's denormalized shape.
  const int64_t m_cols = nm.cols();
  auto session = api::SessionBuilder()
                     .Put("G", matrix::RandomDense(rng, m_cols, 100))
                     .AddNormalizedMatrix("M", std::move(nm))
                     .Build();
  if (!session.ok()) {
    std::printf("session failed: %s\n", session.status().ToString().c_str());
    return 1;
  }

  const std::string pipeline = "colSums(M %*% G)";
  auto prepared = (*session)->Prepare(pipeline);
  if (!prepared.ok()) {
    std::printf("prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("pipeline:  %s\n", pipeline.c_str());
  std::printf("rewriting: %s (RW_find %.1f ms)\n",
              la::ToString(prepared->plan()).c_str(),
              prepared->rewrite().optimize_seconds * 1e3);

  const int64_t m_rows = (*session)->morpheus()->Lookup("M")->rows();
  engine::ExecStats base_stats, hadad_stats;
  auto base = prepared->ExecuteOriginal(&base_stats);
  auto with_hadad = prepared->Execute(&hadad_stats);
  if (!base.ok() || !with_hadad.ok()) return 1;
  std::printf("Morpheus alone: %.1f ms (multiplication factorized, "
              "intermediate %lld x 100)\n",
              base_stats.seconds * 1e3, static_cast<long long>(m_rows));
  std::printf("with HADAD:     %.1f ms (colSums pushdown enabled, "
              "intermediate 1 x %lld)\n",
              hadad_stats.seconds * 1e3, static_cast<long long>(m_cols));
  std::printf("speedup %.1fx; results agree: %s (paper: up to 125x)\n",
              base_stats.seconds / hadad_stats.seconds,
              base->ApproxEquals(*with_hadad, 1e-6) ? "yes" : "NO");
  return 0;
}
