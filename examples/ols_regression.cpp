// Ordinary Least Squares with a materialized inverse view — §2's headline
// example (150x on MLlib in the paper).
//
// The OLS estimator is (X^T X)^{-1} (X^T y). With a materialized view
// V = X^{-1} available, HADAD derives (X^T X)^{-1} (X^T y) =
// V (V^T (X^T y)) using (CD)^{-1} = D^{-1} C^{-1}, (D^T)^{-1} = (D^{-1})^T
// and multiplication associativity: no inverse is computed at query time
// and every intermediate is a vector.

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  const int64_t n = 700;
  Rng rng(7);

  // The builder materializes V = X^{-1} at Build() and registers it with
  // the optimizer, so rewritings may answer the query from it.
  auto session = api::SessionBuilder()
                     .Put("X", matrix::RandomInvertible(rng, n))
                     .Put("y", matrix::RandomDense(rng, n, 1))
                     .AddView("V", "inv(X)")
                     .Build();
  if (!session.ok()) {
    std::printf("session failed: %s\n", session.status().ToString().c_str());
    return 1;
  }

  // The paper stores V as V.csv; we keep it in the session workspace and
  // also demonstrate the CSV round trip.
  const std::string csv = "/tmp/hadad_ols_view.csv";
  auto view = (*session)->workspace().Get("V");
  if (!view.ok() || !matrix::WriteCsv(**view, csv).ok()) return 1;
  std::printf("materialized V = inv(X) (%lldx%lld), archived to %s\n",
              static_cast<long long>(n), static_cast<long long>(n),
              csv.c_str());

  const std::string ols = "inv(t(X) %*% X) %*% (t(X) %*% y)";
  auto prepared = (*session)->Prepare(ols);
  if (!prepared.ok()) {
    std::printf("prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("OLS:       %s\n", ols.c_str());
  std::printf("rewriting: %s (RW_find %.1f ms)\n",
              la::ToString(prepared->plan()).c_str(),
              prepared->rewrite().optimize_seconds * 1e3);

  engine::ExecStats q_stats, rw_stats;
  auto original = prepared->ExecuteOriginal(&q_stats);
  auto rewritten = prepared->Execute(&rw_stats);
  if (!original.ok() || !rewritten.ok()) return 1;
  std::printf("Q_exec %.1f ms -> RW_exec %.1f ms (%.0fx); coefficients "
              "agree: %s\n",
              q_stats.seconds * 1e3, rw_stats.seconds * 1e3,
              q_stats.seconds / rw_stats.seconds,
              original->ApproxEquals(*rewritten, 1e-5) ? "yes" : "NO");
  std::printf("paper band: 70x (R) / 55x (NumPy) / 150x (MLlib) on "
              "10K x 10K.\n");
  return 0;
}
