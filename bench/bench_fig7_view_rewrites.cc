// Figure 7: views-based rewriting of P2.14, P2.21 (OLS), P2.25 (ALS) and
// P2.27 against the V_exp views (naive cost model). Paper shape: P2.14 up
// to 2.8x via V3 = NM; P2.21 70-150x via V1 = D^-1 (all intermediates
// become vectors); P2.25 ~65x via V4 = u1 v2^T + distribution; P2.27 4-41x
// via V9 and V5.

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  std::printf("Figure 7 reproduction: views-based LA rewriting (V_exp, "
              "naive estimator)\n");
  Rng rng(42);
  core::LaBenchConfig config;
  engine::Workspace ws = core::MakeLaBenchWorkspace(rng, config);
  engine::ViewCatalog views(&ws);
  for (const core::ViewSpec& v : core::VexpViews()) {
    Status st = views.MaterializeText(v.name, v.definition);
    if (!st.ok()) {
      std::printf("materializing %s failed: %s\n", v.name.c_str(),
                  st.ToString().c_str());
      return 1;
    }
  }
  la::MetaCatalog base = ws.BuildMetaCatalog();
  for (const core::ViewSpec& v : core::VexpViews()) base.erase(v.name);
  pacb::Optimizer optimizer(base);
  optimizer.SetData(&ws.data());
  for (const core::ViewSpec& v : core::VexpViews()) {
    Status st = optimizer.AddViewText(v.name, v.definition);
    if (!st.ok()) {
      std::printf("AddView %s failed: %s\n", v.name.c_str(),
                  st.ToString().c_str());
      return 1;
    }
  }
  engine::Engine naive(engine::Profile::kNaive, &ws);
  core::PrintComparisonHeader("V_exp views materialized, kNaive engine");
  for (const char* id : {"P2.14", "P2.21", "P2.25", "P2.27"}) {
    const core::Pipeline* p = core::FindPipeline(id);
    auto row = core::ComparePipeline(p->id, p->text, optimizer, naive);
    if (!row.ok()) {
      std::printf("%s failed: %s\n", id, row.status().ToString().c_str());
      return 1;
    }
    core::PrintComparisonRow(*row);
  }
  return 0;
}
