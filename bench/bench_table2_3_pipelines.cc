// Tables 2 and 3: the 57-pipeline LA benchmark. Validates that every
// pipeline parses and type-checks against the Table 6 bindings and prints
// its class (P¬Opt / P_Opt) and estimated as-stated cost γ under both
// sparsity estimators.

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  Rng rng(42);
  core::LaBenchConfig config;
  engine::Workspace ws = core::MakeLaBenchWorkspace(rng, config);
  la::MetaCatalog catalog = ws.BuildMetaCatalog();
  cost::NaiveMetadataEstimator naive;
  cost::MncEstimator mnc;

  std::printf("== Tables 2+3: LA benchmark pipelines (Table 6 bindings, "
              "scaled) ==\n");
  std::printf("%-7s %-6s %16s %16s  %s\n", "id", "class", "gamma(naive)",
              "gamma(MNC)", "pipeline");
  int not_opt = 0;
  for (const core::Pipeline& p : core::LaBenchmark()) {
    auto expr = la::ParseExpression(p.text);
    if (!expr.ok()) {
      std::printf("%-7s PARSE ERROR: %s\n", p.id.c_str(),
                  expr.status().ToString().c_str());
      return 1;
    }
    auto cost_naive =
        cost::EstimateExpression(**expr, catalog, naive, &ws.data());
    auto cost_mnc = cost::EstimateExpression(**expr, catalog, mnc, &ws.data());
    if (!cost_naive.ok() || !cost_mnc.ok()) {
      std::printf("%-7s SHAPE ERROR: %s\n", p.id.c_str(),
                  cost_naive.status().ToString().c_str());
      return 1;
    }
    const bool no = p.cls == core::PipelineClass::kNotOpt;
    if (no) ++not_opt;
    std::printf("%-7s %-6s %16.0f %16.0f  %s\n", p.id.c_str(),
                no ? "P-Opt" : "POpt", cost_naive->cost, cost_mnc->cost,
                p.text.c_str());
  }
  std::printf("\n%zu pipelines total; %d in P¬Opt (paper: 38), %zu in P_Opt "
              "(paper: 19).\n",
              core::LaBenchmark().size(), not_opt,
              core::LaBenchmark().size() - static_cast<size_t>(not_opt));
  return 0;
}
