// §9.1.3: rewriting performance and overhead. Uses google-benchmark to
// measure RW_find (the optimizer's wall time) for representative pipelines
// under both sparsity estimators, then prints the paper-style summary:
// RW_find distribution across P¬Opt and the overhead percentage
// RW_find / (Q_exec + RW_find) on the already-optimal P_Opt set.
// Paper: most RW_find under 25ms (naive) / slightly higher with MNC;
// overhead <1% for expensive P_Opt pipelines, up to ~10% for cheap ones.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

namespace {

struct Env {
  engine::Workspace workspace;
  std::unique_ptr<pacb::Optimizer> naive_optimizer;
  std::unique_ptr<pacb::Optimizer> mnc_optimizer;
};

Env* GetEnv() {
  static Env* env = [] {
    auto* e = new Env();
    Rng rng(42);
    core::LaBenchConfig config;
    e->workspace = core::MakeLaBenchWorkspace(rng, config);
    la::MetaCatalog catalog = e->workspace.BuildMetaCatalog();
    pacb::OptimizerOptions naive_options;
    e->naive_optimizer =
        std::make_unique<pacb::Optimizer>(catalog, naive_options);
    e->naive_optimizer->SetData(&e->workspace.data());
    pacb::OptimizerOptions mnc_options;
    mnc_options.estimator = pacb::EstimatorKind::kMnc;
    e->mnc_optimizer = std::make_unique<pacb::Optimizer>(catalog, mnc_options);
    e->mnc_optimizer->SetData(&e->workspace.data());
    return e;
  }();
  return env;
}

void BM_RwFind(benchmark::State& state, const std::string& pipeline_id,
               bool mnc) {
  Env* env = GetEnv();
  const core::Pipeline* p = core::FindPipeline(pipeline_id);
  const pacb::Optimizer& optimizer =
      mnc ? *env->mnc_optimizer : *env->naive_optimizer;
  la::ExprPtr expr = la::ParseExpression(p->text).value();
  for (auto _ : state) {
    auto r = optimizer.Optimize(expr);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}

void RegisterAll() {
  for (const char* id :
       {"P1.1", "P1.4", "P1.13", "P1.15", "P2.10", "P2.21", "P1.29"}) {
    benchmark::RegisterBenchmark(
        (std::string("RW_find/") + id + "/naive").c_str(),
        [id](benchmark::State& s) { BM_RwFind(s, id, false); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("RW_find/") + id + "/mnc").c_str(),
        [id](benchmark::State& s) { BM_RwFind(s, id, true); })
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintSummary() {
  Env* env = GetEnv();
  engine::Engine naive_engine(engine::Profile::kNaive, &env->workspace);
  std::printf("\n== §9.1.3 summary: RW_find distribution over P¬Opt ==\n");
  for (bool mnc : {false, true}) {
    const pacb::Optimizer& optimizer =
        mnc ? *env->mnc_optimizer : *env->naive_optimizer;
    std::vector<double> times_ms;
    for (const core::Pipeline& p : core::LaBenchmark()) {
      if (p.cls != core::PipelineClass::kNotOpt) continue;
      auto r = optimizer.OptimizeText(p.text);
      if (!r.ok()) continue;
      times_ms.push_back(r->optimize_seconds * 1e3);
    }
    std::sort(times_ms.begin(), times_ms.end());
    const double median = times_ms[times_ms.size() / 2];
    const double p90 = times_ms[times_ms.size() * 9 / 10];
    std::printf("  %-5s estimator: n=%zu median=%.2fms p90=%.2fms "
                "max=%.2fms\n",
                mnc ? "MNC" : "naive", times_ms.size(), median, p90,
                times_ms.back());
  }
  std::printf("  Paper: 64%% under 25ms (naive); MNC slightly slower; "
              "longest ~200-300ms.\n");

  std::printf("\n== §9.1.3 summary: overhead %% on P_Opt (already optimal) "
              "==\n");
  std::printf("%-7s %12s %12s %9s\n", "id", "Qexec[ms]", "RWfind[ms]",
              "ovhd[%]");
  for (const core::Pipeline& p : core::LaBenchmark()) {
    if (p.cls != core::PipelineClass::kOpt) continue;
    auto row = core::ComparePipeline(p.id, p.text, *env->mnc_optimizer,
                                     naive_engine, /*repeats=*/2);
    if (!row.ok()) continue;
    std::printf("%-7s %12.3f %12.3f %9.2f\n", row->id.c_str(),
                row->q_exec_seconds * 1e3, row->rw_find_seconds * 1e3,
                row->overhead_pct);
  }
  std::printf("  Paper: <1%% for inverse/determinant-heavy pipelines, up to "
              "~10%% for cheap multiplication chains.\n");
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}
