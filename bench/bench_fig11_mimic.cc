// Figure 11: the MIMIC micro-hybrid benchmark — the same ten-query suite
// over patient/admission tables and a patient-service outcome matrix, at
// three care-unit sizes (the paper's 40K / 20K / 10K row runs: CCU, TSICU,
// MICU). Paper shape mirrors the Twitter benchmark.

#include "hybrid_bench.h"

using namespace hadad;  // NOLINT

int main() {
  std::printf("Figure 11 reproduction: MIMIC micro-hybrid benchmark\n");
  hybrid::DatasetConfig config;
  config.num_dims = 2000;
  config.num_categories = 250;
  config.facts_per_entity = 3.0;
  config.selection_fraction = 0.6;

  config.num_entities = 20000;
  if (bench::RunMicroHybrid(hybrid::BenchmarkKind::kMimic, config,
                            "Fig 11(a): CCU (largest)") != 0) {
    return 1;
  }
  config.num_entities = 10000;
  if (bench::RunMicroHybrid(hybrid::BenchmarkKind::kMimic, config,
                            "Fig 11(b): TSICU") != 0) {
    return 1;
  }
  config.num_entities = 5000;
  if (bench::RunMicroHybrid(hybrid::BenchmarkKind::kMimic, config,
                            "Fig 11(c): MICU (smallest)") != 0) {
    return 1;
  }
  return 0;
}
