// Figure 10: the Twitter micro-hybrid benchmark — ten queries combining a
// relational preprocessing stage (user/tweet join + tweet-hashtag matrix
// construction under a keyword+country selection) with LA analysis, at
// three selection sizes (the paper's 2M / 1M / 0.5M row sweeps). Paper
// shape: every query improves (2.3x-16.5x), with gains persisting across
// the selectivity sweep.

#include "hybrid_bench.h"

using namespace hadad;  // NOLINT

int main() {
  std::printf("Figure 10 reproduction: Twitter micro-hybrid benchmark\n");
  hybrid::DatasetConfig config;
  config.num_entities = 20000;
  config.num_dims = 2000;
  config.num_categories = 250;
  config.facts_per_entity = 3.0;

  config.selection_fraction = 0.9;
  if (bench::RunMicroHybrid(hybrid::BenchmarkKind::kTwitter, config,
                            "Fig 10(a): full selection (\"covid\")") != 0) {
    return 1;
  }
  config.selection_fraction = 0.45;
  if (bench::RunMicroHybrid(hybrid::BenchmarkKind::kTwitter, config,
                            "Fig 10(b): half selection (\"Trump\")") != 0) {
    return 1;
  }
  config.selection_fraction = 0.22;
  if (bench::RunMicroHybrid(hybrid::BenchmarkKind::kTwitter, config,
                            "Fig 10(c): quarter selection (\"US "
                            "election\")") != 0) {
    return 1;
  }
  return 0;
}
