// Figure 6: the aggregate pipelines P1.13, P1.25, P1.14 and P2.12 before and
// after rewriting (MNC cost model, log-scale in the paper). The headline:
// sum(MN) collapses to a vector expression (paper: ~50x on P1.13, up to 42x
// on P1.14/P2.12); P1.25 is dominated by picking the right multiplication
// order inside M N N^T.

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  std::printf("Figure 6 reproduction: aggregate/statistical rewrites "
              "(MNC estimator)\n");
  std::printf("Paper shape: P1.13 ~50x; P1.14/P2.12 up to 42x; P1.25 "
              "improves via chain order.\n");
  Rng rng(42);
  core::LaBenchConfig config;
  engine::Workspace ws = core::MakeLaBenchWorkspace(rng, config);
  pacb::OptimizerOptions options;
  options.estimator = pacb::EstimatorKind::kMnc;
  pacb::Optimizer optimizer(ws.BuildMetaCatalog(), options);
  optimizer.SetData(&ws.data());
  engine::Engine naive(engine::Profile::kNaive, &ws);
  core::PrintComparisonHeader("dense bindings, kNaive engine");
  for (const char* id : {"P1.13", "P1.25", "P1.14", "P2.12"}) {
    const core::Pipeline* p = core::FindPipeline(id);
    auto row = core::ComparePipeline(p->id, p->text, optimizer, naive);
    if (!row.ok()) {
      std::printf("%s failed: %s\n", id, row.status().ToString().c_str());
      return 1;
    }
    core::PrintComparisonRow(*row);
  }

  // The kSmart engine knows sum(t(M)) = sum(M) style rules but not the
  // cross-rule chain (Example 6.3): HADAD still wins on P1.14.
  engine::Engine smart(engine::Profile::kSmart, &ws);
  core::PrintComparisonHeader("kSmart engine (SystemML-like)");
  for (const char* id : {"P1.13", "P1.14"}) {
    const core::Pipeline* p = core::FindPipeline(id);
    auto row = core::ComparePipeline(p->id, p->text, optimizer, smart);
    if (!row.ok()) return 1;
    core::PrintComparisonRow(*row);
  }
  return 0;
}
