// Scalar vs SIMD kernel tier, measured at the matrix-kernel seam: the same
// blocked/fused kernels run twice via ScopedTierOverride — once pinned to
// the scalar reference tier, once on the tier runtime dispatch resolved for
// this CPU — and every vector result is verified BIT-IDENTICAL to the
// scalar one (verified_tolerance 0 in the JSON: the tiers share one
// rounding sequence by construction, so any mismatch is a bug, not noise).
//
// On a scalar-only host the two arms coincide and speedups print ~1.0x;
// the records still emit so the baseline schema is hardware-independent.
//
//   $ ./build/bench/bench_simd_kernels [--json=PATH]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"
#include "matrix/blocked_kernels.h"
#include "matrix/generate.h"
#include "matrix/matrix.h"
#include "matrix/simd.h"

using namespace hadad;  // NOLINT

namespace {

bool BitsEqual(const matrix::DenseMatrix& a, const matrix::DenseMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.rows() * a.cols()) *
                         sizeof(double)) == 0;
}

// Best-of-repeats wall clock of `body` under `tier`.
double TimeUnder(matrix::SimdTier tier, int repeats,
                 const std::function<matrix::DenseMatrix()>& body,
                 matrix::DenseMatrix* out) {
  matrix::ScopedTierOverride override(tier);
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    matrix::DenseMatrix result = body();
    best = std::min(best, timer.ElapsedSeconds());
    *out = std::move(result);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json("bench_simd_kernels", argc, argv);
  const matrix::SimdTier vector_tier = matrix::DetectedCpuTier();
  std::printf("== SIMD kernel tier vs scalar reference (tier: %s) ==\n\n",
              matrix::TierName(vector_tier));

  Rng rng(97);
  // Dense GEMM operands: big enough that the axpy inner loop dominates,
  // small enough for a quick single-core CI run. Odd inner/outer sizes keep
  // the masked-tail paths in the measurement.
  const matrix::DenseMatrix ga =
      matrix::RandomDense(rng, 384, 300, -1.0, 1.0).dense();
  const matrix::DenseMatrix gb =
      matrix::RandomDense(rng, 300, 385, -1.0, 1.0).dense();
  const matrix::DenseMatrix gat =
      matrix::RandomDense(rng, 300, 384, -1.0, 1.0).dense();
  const matrix::SparseMatrix sp =
      matrix::RandomSparse(rng, 1500, 300, 0.05, -1.0, 1.0).sparse();

  // 4-op fused elementwise chain E1 + E2 .* E3 - E4 in postfix — the
  // program shape FuseElementwiseChains emits for that expression.
  const int64_t er = 900, ec = 901;
  const matrix::DenseMatrix e1 =
      matrix::RandomDense(rng, er, ec, -1.0, 1.0).dense();
  const matrix::DenseMatrix e2 =
      matrix::RandomDense(rng, er, ec, -1.0, 1.0).dense();
  const matrix::DenseMatrix e3 =
      matrix::RandomDense(rng, er, ec, -1.0, 1.0).dense();
  const matrix::DenseMatrix e4 =
      matrix::RandomDense(rng, er, ec, -1.0, 1.0).dense();
  matrix::FusedElementwiseProgram chain;
  chain.steps = {
      {matrix::FusedStep::Code::kPushInput, 0, 0.0},
      {matrix::FusedStep::Code::kPushInput, 1, 0.0},
      {matrix::FusedStep::Code::kPushInput, 2, 0.0},
      {matrix::FusedStep::Code::kMul, 0, 0.0},       // E2 .* E3
      {matrix::FusedStep::Code::kAdd, 0, 0.0},       // E1 + ...
      {matrix::FusedStep::Code::kPushInput, 3, 0.0},
      {matrix::FusedStep::Code::kPushConst, 0, -1.0},
      {matrix::FusedStep::Code::kMul, 0, 0.0},       // -E4
      {matrix::FusedStep::Code::kAdd, 0, 0.0},       // ... - E4
  };
  chain.max_stack = 3;
  std::vector<matrix::FusedInput> chain_inputs(4);
  chain_inputs[0].dense = &e1;
  chain_inputs[1].dense = &e2;
  chain_inputs[2].dense = &e3;
  chain_inputs[3].dense = &e4;

  struct Workload {
    const char* id;
    std::function<matrix::DenseMatrix()> body;
  };
  const std::vector<Workload> workloads = {
      {"gemm_dense_384",
       [&] { return matrix::MultiplyDenseBlocked(ga, gb); }},
      {"gemm_tn_fused_384",
       [&] { return matrix::MultiplyTransposedDenseBlocked(gat, gb); }},
      {"spmm_1500x300",
       [&] { return matrix::MultiplySparseDenseParallel(sp, gb); }},
      {"fused_chain4_900sq",
       [&] {
         return matrix::EvalFusedElementwise(chain, chain_inputs, er, ec);
       }},
      {"gemm_colsums_384",
       [&] { return matrix::GemmColSums(ga, gb); }},
      {"gemm_colmeans_384",
       [&] { return matrix::GemmColMeans(ga, gb); }},
      {"gemm_sum_384",
       [&] {
         return matrix::DenseMatrix(1, 1, {matrix::GemmSum(ga, gb)});
       }},
  };
  constexpr int kRepeats = 5;

  std::printf("%-20s %12s %12s %8s  %s\n", "workload", "scalar[ms]",
              "vector[ms]", "speedup", "verified");
  bool all_identical = true;
  for (const Workload& w : workloads) {
    matrix::DenseMatrix scalar_out(1, 1), vector_out(1, 1);
    const double scalar_s =
        TimeUnder(matrix::SimdTier::kScalar, kRepeats, w.body, &scalar_out);
    const double vector_s =
        TimeUnder(vector_tier, kRepeats, w.body, &vector_out);
    const bool identical = BitsEqual(scalar_out, vector_out);
    all_identical = all_identical && identical;
    const double speedup = scalar_s / vector_s;
    std::printf("%-20s %12.3f %12.3f %7.2fx  %s\n", w.id, scalar_s * 1e3,
                vector_s * 1e3, speedup,
                identical ? "bit-identical" : "MISMATCH");
    // verified_tolerance 0: the vector arm reproduced the scalar bits.
    json.Add(w.id, vector_s, speedup, /*threads=*/1,
             /*verified_tolerance=*/identical ? 0.0 : -1.0);
  }

  HADAD_CHECK_MSG(all_identical,
                  "vector tier diverged from the scalar reference");
  if (!json.Write()) return 1;
  std::printf("\nall vector results bit-identical to scalar reference\n");
  return 0;
}
