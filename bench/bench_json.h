// Machine-readable benchmark output, shared by the bench/ mains.
//
// Each driver keeps printing its human-oriented table to stdout; when
// invoked with `--json=PATH` (or with HADAD_BENCH_JSON=PATH in the
// environment) it additionally appends one record per measured workload
// and writes them as a single JSON document on exit:
//
//   {
//     "benchmark": "bench_update_refresh",
//     "results": [
//       {"workload": "append_incremental", "seconds": 0.031,
//        "speedup": 12.4, "threads": 1, "verified_tolerance": 1e-09},
//       ...
//     ]
//   }
//
// `scripts/ci.sh bench` runs every driver this way and merges the
// per-driver documents into BENCH_results.json at the repo root, which is
// what perf-tracking tooling should consume — the stdout tables are for
// humans and carry no stability guarantee.

#ifndef HADAD_BENCH_BENCH_JSON_H_
#define HADAD_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace hadad::bench {

class JsonWriter {
 public:
  // Picks the output path from `--json=PATH` in argv, falling back to the
  // HADAD_BENCH_JSON environment variable; with neither, Add/Write are
  // no-ops and the driver behaves exactly as before.
  JsonWriter(std::string benchmark, int argc, char** argv)
      : benchmark_(std::move(benchmark)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) path_ = arg.substr(7);
    }
    if (path_.empty()) {
      const char* env = std::getenv("HADAD_BENCH_JSON");
      if (env != nullptr) path_ = env;
    }
  }

  bool enabled() const { return !path_.empty(); }

  // One measured workload. `speedup` < 0 or `verified_tolerance` < 0 mean
  // "not applicable" and the field is emitted as null.
  void Add(const std::string& workload, double seconds, double speedup,
           int threads, double verified_tolerance) {
    if (!enabled()) return;
    records_.push_back(
        Record{workload, seconds, speedup, threads, verified_tolerance});
  }

  // Latency-distribution percentiles (seconds) for one workload, read off
  // a live histogram (obs::HistogramQuantile over hadad_run_seconds is the
  // intended source). Emitted as a sibling `run_seconds_percentiles` list
  // so tooling that only reads `results` (scripts/bench_diff.py) is
  // unaffected.
  void AddRunPercentiles(const std::string& workload, double p50, double p95,
                         double p99) {
    if (!enabled()) return;
    percentiles_.push_back(Percentiles{workload, p50, p95, p99});
  }

  // Writes the document; returns false (after printing why) on I/O error.
  bool Write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n",
                   path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"results\": [",
                 Escaped(benchmark_).c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "%s\n    {\"workload\": \"%s\", \"seconds\": %.9g, ",
                   i == 0 ? "" : ",", Escaped(r.workload).c_str(), r.seconds);
      if (r.speedup >= 0) {
        std::fprintf(f, "\"speedup\": %.6g, ", r.speedup);
      } else {
        std::fprintf(f, "\"speedup\": null, ");
      }
      std::fprintf(f, "\"threads\": %d, ", r.threads);
      if (r.verified_tolerance >= 0) {
        std::fprintf(f, "\"verified_tolerance\": %.6g}", r.verified_tolerance);
      } else {
        std::fprintf(f, "\"verified_tolerance\": null}");
      }
    }
    std::fprintf(f, "\n  ]");
    if (!percentiles_.empty()) {
      std::fprintf(f, ",\n  \"run_seconds_percentiles\": [");
      for (size_t i = 0; i < percentiles_.size(); ++i) {
        const Percentiles& p = percentiles_[i];
        std::fprintf(f,
                     "%s\n    {\"workload\": \"%s\", \"p50\": %.9g, "
                     "\"p95\": %.9g, \"p99\": %.9g}",
                     i == 0 ? "" : ",", Escaped(p.workload).c_str(), p.p50,
                     p.p95, p.p99);
      }
      std::fprintf(f, "\n  ]");
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Record {
    std::string workload;
    double seconds;
    double speedup;
    int threads;
    double verified_tolerance;
  };

  struct Percentiles {
    std::string workload;
    double p50;
    double p95;
    double p99;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string benchmark_;
  std::string path_;
  std::vector<Record> records_;
  std::vector<Percentiles> percentiles_;
};

}  // namespace hadad::bench

#endif  // HADAD_BENCH_BENCH_JSON_H_
