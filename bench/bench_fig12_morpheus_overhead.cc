// Figure 12: HADAD's RW_find as a percentage of total time
// (Q_exec + RW_find) on Morpheus, for the aggregate-only pipelines P1.10,
// P1.16 and P1.18, across the PK-FK grid. Paper: up to ~9% when the data is
// tiny and the computation nearly free, under 1% at larger sizes.

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  std::printf("Figure 12 reproduction: HADAD overhead %% on Morpheus "
              "(aggregate-only pipelines)\n");
  struct Case {
    const char* id;
    const char* text;
  } cases[] = {
      {"P1.10", "rowSums(t(M))"},
      {"P1.16", "sum(t(M))"},
      {"P1.18", "sum(colSums(M))"},
  };
  const double tuple_ratios[] = {2, 10, 20};
  const double feature_ratios[] = {1, 5};
  for (const Case& c : cases) {
    std::printf("\n-- %s: %s --\n", c.id, c.text);
    std::printf("%6s %6s %12s %12s %9s\n", "TR", "FR", "Qexec[ms]",
                "RWfind[ms]", "ovhd[%]");
    for (double tr : tuple_ratios) {
      for (double fr : feature_ratios) {
        Rng rng(static_cast<uint64_t>(tr * 10 + fr));
        morpheus::PkFkConfig config;
        config.n_r = 500;
        config.d_s = 20;
        config.tuple_ratio = tr;
        config.feature_ratio = fr;
        morpheus::NormalizedMatrix nm = morpheus::GeneratePkFk(rng, config);
        engine::Workspace ws;
        morpheus::MorpheusEngine morpheus_engine(&ws);
        morpheus_engine.Register("M", nm);
        la::MetaCatalog catalog;
        catalog["M"] = {.rows = nm.rows(), .cols = nm.cols(),
                        .nnz = static_cast<double>(nm.rows() * nm.cols())};
        pacb::Optimizer optimizer(catalog);
        auto rewrite = optimizer.OptimizeText(c.text);
        if (!rewrite.ok()) return 1;
        engine::ExecStats stats;
        auto out = morpheus_engine.Run(
            la::ParseExpression(c.text).value(), &stats);
        if (!out.ok()) return 1;
        const double total = stats.seconds + rewrite->optimize_seconds;
        std::printf("%6.0f %6.0f %12.3f %12.3f %9.2f\n", tr, fr,
                    stats.seconds * 1e3, rewrite->optimize_seconds * 1e3,
                    total > 0 ? 100.0 * rewrite->optimize_seconds / total
                              : 0.0);
      }
    }
  }
  std::printf("\nPaper: up to ~9%% at the smallest sizes, <1%% at the "
              "largest.\n");
  return 0;
}
