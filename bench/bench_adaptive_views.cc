// Adaptive materialized views: repeated-workload sweep. Three serving
// configurations run the same query mix — pipelines sharing the expensive
// subexpression t(X) %*% X:
//
//   cold    plain session: every Run() recomputes the pipeline (the plan
//           cache only spares RW_find);
//   warmed  AdaptiveViews session after the advisor observed the workload,
//           materialized the hot subexpressions in the background, and the
//           rewrites landed on them;
//   oracle  a human pre-materialized the shared subexpression as a view at
//           build time (the paper's hand-tuned V_exp setup).
//
// Results of every configuration are verified against the cold path at
// 1e-9; the driver exits non-zero on a mismatch or if the warmed path is
// not at least 1.5x faster than cold.
//
//   $ ./build/bench/bench_adaptive_views

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "common/timer.h"
#include "matrix/generate.h"
#include "views/adaptive.h"

using namespace hadad;  // NOLINT

namespace {

constexpr int kQueries = 3;
constexpr int kTimedRounds = 30;

std::vector<std::string> QueryMix() {
  std::vector<std::string> queries;
  for (int k = 0; k < kQueries; ++k) {
    queries.push_back("(t(X) %*% X) + R" + std::to_string(k));
  }
  return queries;
}

api::SessionBuilder MakeBuilder() {
  Rng rng(42);
  api::SessionBuilder builder;
  builder.Put("X", matrix::RandomDense(rng, 1000, 50));
  for (int k = 0; k < kQueries; ++k) {
    builder.Put("R" + std::to_string(k), matrix::RandomDense(rng, 50, 50));
  }
  return builder;
}

// Runs the full mix kTimedRounds times; returns total seconds, or a
// negative value on failure/mismatch.
double TimedSweep(api::Session& session,
                  const std::vector<std::string>& queries,
                  const std::vector<matrix::Matrix>& expected) {
  Timer timer;
  for (int round = 0; round < kTimedRounds; ++round) {
    for (size_t q = 0; q < queries.size(); ++q) {
      auto result = session.Run(queries[q]);
      if (!result.ok()) {
        std::printf("run failed: %s\n", result.status().ToString().c_str());
        return -1.0;
      }
      if (!result->ApproxEquals(expected[q], 1e-9)) {
        std::printf("VERIFICATION FAILED for %s\n", queries[q].c_str());
        return -1.0;
      }
    }
  }
  return timer.ElapsedSeconds();
}

}  // namespace

int main() {
  const std::vector<std::string> queries = QueryMix();

  // Cold configuration doubles as the ground truth.
  auto cold_session = MakeBuilder().Build().value();
  std::vector<matrix::Matrix> expected;
  for (const std::string& q : queries) {
    auto r = cold_session->Run(q);
    if (!r.ok()) {
      std::printf("baseline failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    expected.push_back(*r);
  }
  const double cold_s = TimedSweep(*cold_session, queries, expected);

  // Warmed adaptive configuration: observe, materialize, re-serve.
  views::AdaptiveOptions options;
  options.budget_bytes = int64_t{64} << 20;
  options.min_hits = 2;
  auto adaptive_session = MakeBuilder().AdaptiveViews(options).Build().value();
  for (int warm = 0; warm < 3; ++warm) {
    for (const std::string& q : queries) {
      if (!adaptive_session->Run(q).ok()) {
        std::printf("warmup failed\n");
        return 1;
      }
    }
    // Let queued materializations land so the advisor reaches steady state
    // before timing (background installs race warmup runs otherwise).
    adaptive_session->WaitForAdaptiveViews();
  }
  const double warmed_s = TimedSweep(*adaptive_session, queries, expected);

  // Oracle configuration: the shared subexpression pre-materialized by hand.
  auto oracle_session =
      MakeBuilder().AddView("G", "t(X) %*% X").Build().value();
  const double oracle_s = TimedSweep(*oracle_session, queries, expected);

  if (cold_s < 0 || warmed_s < 0 || oracle_s < 0) return 1;

  const int runs = kTimedRounds * kQueries;
  std::printf("== adaptive views: repeated-workload sweep "
              "(%d queries x %d rounds, verified at 1e-9) ==\n",
              kQueries, kTimedRounds);
  std::printf("%-22s %12s %14s %10s\n", "configuration", "total[ms]",
              "per-run[us]", "speedup");
  auto row = [&](const char* name, double seconds) {
    std::printf("%-22s %12.2f %14.1f %9.2fx\n", name, seconds * 1e3,
                seconds * 1e6 / runs, seconds > 0 ? cold_s / seconds : 0.0);
  };
  row("cold (no views)", cold_s);
  row("warmed (adaptive)", warmed_s);
  row("oracle (hand views)", oracle_s);

  api::SessionStats stats = adaptive_session->stats();
  std::printf("\nadaptive store: %lld views created, %lld evicted, "
              "%lld view-hit runs, %lld / %lld budget bytes\n",
              static_cast<long long>(stats.adaptive_views_created),
              static_cast<long long>(stats.adaptive_views_evicted),
              static_cast<long long>(stats.adaptive_view_hit_runs),
              static_cast<long long>(stats.adaptive_bytes_in_use),
              static_cast<long long>(stats.adaptive_budget_bytes));

  const double speedup = warmed_s > 0 ? cold_s / warmed_s : 0.0;
  if (speedup < 1.5) {
    std::printf("FAILED: warmed speedup %.2fx < 1.5x\n", speedup);
    return 1;
  }
  std::printf("warmed-path speedup %.2fx (>= 1.5x required)\n", speedup);
  return 0;
}
