// Sequential vs parallel execution: wall clock of the tree-walking
// engine::Execute baseline against the exec:: DAG engine at 1/2/4/8
// threads, over fig5/fig9-style workloads. Emits the speedup table and
// verifies every parallel result against the sequential one (1e-9 relative
// tolerance; the kernels are in fact bit-identical).
//
// Speedup at 1 thread isolates the single-core wins (CSE, leaf-copy
// elision, blocked kernels); higher thread counts add DAG- and
// intra-operator parallelism on machines with the cores to back it
// (stats.parallel work/span column bounds what the plan can reach).
//
//   $ ./build/bench/bench_parallel_scaling

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/hadad.h"
#include "exec/executor.h"

using namespace hadad;  // NOLINT

namespace {

struct Workload {
  const char* id;
  const char* text;
  const char* note;
};

double TimeSequential(const la::ExprPtr& expr,
                      const engine::Workspace& workspace, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    auto out = engine::Execute(*expr, workspace);
    HADAD_CHECK_MSG(out.ok(), out.status().ToString().c_str());
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main() {
  std::printf("== Parallel scaling: engine::Execute (sequential tree walk) "
              "vs exec:: DAG engine ==\n");
  std::printf("hardware_concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  Rng rng(1234);
  engine::Workspace workspace;
  // fig9-scale dense bindings (the Morpheus grid uses ~500-row cores; the
  // GEMM chains below are the dense hot path HADAD's rewrites leave behind).
  workspace.Put("X", matrix::RandomDense(rng, 500, 500));
  workspace.Put("Y", matrix::RandomDense(rng, 500, 500));
  workspace.Put("A", matrix::RandomDense(rng, 1200, 100));
  workspace.Put("B", matrix::RandomDense(rng, 100, 1200));
  // fig5-style sparse binding (AL3-like X of Table 4).
  workspace.Put("S", matrix::RandomSparse(rng, 4000, 500, 0.002));
  // Same-shape dense operands for the fused elementwise chain.
  workspace.Put("E1", matrix::RandomDense(rng, 1500, 1200));
  workspace.Put("E2", matrix::RandomDense(rng, 1500, 1200));
  workspace.Put("E3", matrix::RandomDense(rng, 1500, 1200));
  workspace.Put("E4", matrix::RandomDense(rng, 1500, 1200));

  const std::vector<Workload> workloads = {
      {"chain4", "((X %*% Y) %*% X) %*% Y", "pure dense GEMM chain"},
      {"cse2", "((X %*% Y) %*% (X %*% Y)) + ((X %*% Y) %*% (X %*% Y))",
       "repeated subtrees: CSE folds 6 GEMMs to 2"},
      {"gram", "t(A) %*% A", "transpose-fused Gram matrix"},
      {"wide", "(X %*% Y) %*% (Y %*% X)",
       "two independent products: DAG parallelism (see work/span)"},
      {"tall", "A %*% (B %*% (A %*% B))", "tall-skinny chain as stated"},
      {"spmm", "S %*% (X %*% Y)", "row-parallel CSR SpMM feeding GEMM"},
      {"elemchain", "E1 + E2 * E3 - E4",
       "elementwise chain: 4 ops fused to one pass"},
      {"aggpush", "colSums(A %*% B)",
       "colSums pushed into the GEMM: product never materialized"},
  };
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  constexpr int kRepeats = 3;

  std::printf("%-7s %10s |", "id", "seq[ms]");
  for (int t : thread_counts) std::printf("   t=%d[ms] speedup |", t);
  std::printf(" work/span\n");

  bool all_match = true;
  std::vector<double> total_par(thread_counts.size(), 0.0);
  double total_seq = 0.0;
  for (const Workload& w : workloads) {
    auto parsed = la::ParseExpression(w.text);
    HADAD_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
    const la::ExprPtr& expr = *parsed;

    auto reference = engine::Execute(*expr, workspace);
    HADAD_CHECK_MSG(reference.ok(), reference.status().ToString().c_str());
    const double seq_s = TimeSequential(expr, workspace, kRepeats);
    total_seq += seq_s;
    std::printf("%-7s %10.2f |", w.id, seq_s * 1e3);

    double work_over_span = 0.0;
    for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
      exec::Executor executor(
          engine::ExecOptions{.threads = thread_counts[ti]});
      double best = 1e300;
      engine::ExecStats stats;
      for (int r = 0; r < kRepeats; ++r) {
        stats = engine::ExecStats();
        auto out = executor.Run(expr, workspace, &stats);
        HADAD_CHECK_MSG(out.ok(), out.status().ToString().c_str());
        best = std::min(best, stats.seconds);
        if (!reference->ApproxEquals(*out, 1e-9)) all_match = false;
      }
      total_par[ti] += best;
      std::printf(" %9.2f %6.2fx |", best * 1e3, seq_s / best);
      if (stats.critical_path_seconds > 0.0) {
        work_over_span =
            stats.total_operator_seconds / stats.critical_path_seconds;
      }
    }
    std::printf(" %8.2fx  %s\n", work_over_span, w.note);
  }

  std::printf("%-7s %10.2f |", "total", total_seq * 1e3);
  for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
    std::printf(" %9.2f %6.2fx |", total_par[ti] * 1e3,
                total_seq / total_par[ti]);
  }

  // Operator fusion isolated: the same DAG engine at 1 thread with the
  // fusion pass on vs off, so the speedup is purely the eliminated
  // intermediates (no CSE/kernel/thread differences in the comparison).
  std::printf("\n\n== Operator fusion at 1 thread: fused vs unfused DAG ==\n");
  std::printf("%-9s %12s %12s %8s %6s %6s\n", "id", "unfused[ms]",
              "fused[ms]", "speedup", "nodes", "elim");
  const std::vector<Workload> fusion_workloads = {
      {"elemchain", "E1 + E2 * E3 - E4", ""},
      {"aggpush", "colSums(A %*% B)", ""},
      {"aggsum", "sum(A %*% B)", ""},
  };
  for (const Workload& w : fusion_workloads) {
    auto parsed = la::ParseExpression(w.text);
    HADAD_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
    const la::ExprPtr& expr = *parsed;
    exec::Executor unfused(engine::ExecOptions{
        .threads = 1, .enable_fusion = false});
    exec::Executor fused(engine::ExecOptions{.threads = 1});
    double best_unfused = 1e300, best_fused = 1e300;
    engine::ExecStats stats;
    Result<matrix::Matrix> reference = unfused.Run(expr, workspace);
    HADAD_CHECK_MSG(reference.ok(), reference.status().ToString().c_str());
    for (int r = 0; r < kRepeats; ++r) {
      engine::ExecStats u, f;
      auto out_u = unfused.Run(expr, workspace, &u);
      HADAD_CHECK_MSG(out_u.ok(), out_u.status().ToString().c_str());
      auto out_f = fused.Run(expr, workspace, &f);
      HADAD_CHECK_MSG(out_f.ok(), out_f.status().ToString().c_str());
      if (!reference->ApproxEquals(*out_f, 1e-9)) all_match = false;
      best_unfused = std::min(best_unfused, u.seconds);
      best_fused = std::min(best_fused, f.seconds);
      stats = f;
    }
    std::printf("%-9s %12.2f %12.2f %7.2fx %6lld %6lld\n", w.id,
                best_unfused * 1e3, best_fused * 1e3,
                best_unfused / best_fused,
                static_cast<long long>(stats.fused_nodes),
                static_cast<long long>(stats.fused_ops_eliminated));
  }

  std::printf("\nresults %s sequential baseline (1e-9 relative)\n",
              all_match ? "match" : "DIVERGE FROM");
  return all_match ? 0 : 1;
}
