// Tables 4 and 5: the datasets behind the LA benchmark, regenerated
// synthetically at laptop scale (aspect ratios and sparsity fractions
// preserved; see DESIGN.md's substitution table).

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  core::LaBenchConfig config;
  std::printf("== Tables 4+5: datasets (scaled reproductions) ==\n");
  std::printf("%-22s %8s %8s %12s   %s\n", "dataset", "rows", "cols",
              "sparsity", "paper shape");
  for (const core::DatasetSpec& d : core::PaperDatasets(config)) {
    std::printf("%-22s %8lld %8lld %12.6f   %s\n", d.name.c_str(),
                static_cast<long long>(d.rows),
                static_cast<long long>(d.cols), d.sparsity,
                d.paper_shape.c_str());
  }

  Rng rng(42);
  engine::Workspace ws = core::MakeLaBenchWorkspace(rng, config);
  std::printf("\n== Table 6 bindings actually materialized ==\n");
  std::printf("%-6s %8s %8s %12s %10s\n", "name", "rows", "cols", "nnz",
              "storage");
  for (const auto& [name, m] : ws.data()) {
    std::printf("%-6s %8lld %8lld %12lld %10s\n", name.c_str(),
                static_cast<long long>(m->rows()),
                static_cast<long long>(m->cols()),
                static_cast<long long>(m->Nnz()),
                m->is_sparse() ? "CSR" : "dense");
  }
  return 0;
}
