// Appendices C/D/E: the P¬Opt pipelines re-run under the naive cost model
// and under the paper's sparse-binding variations (§9.1.1's "AS/NS in the
// role of M" discussion): with an ultra-sparse M, t(M%*%N) barely gains
// (the big intermediate never densifies), while a Netflix-sparsity M still
// gains ~1.8x; (MN)M becomes much faster outright.

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

namespace {

int RunBindings(const char* label, const core::LaBenchConfig& config,
                uint64_t seed) {
  Rng rng(seed);
  engine::Workspace ws = core::MakeLaBenchWorkspace(rng, config);
  pacb::Optimizer optimizer(ws.BuildMetaCatalog());  // Naive estimator.
  optimizer.SetData(&ws.data());
  engine::Engine naive(engine::Profile::kNaive, &ws);
  core::PrintComparisonHeader(label);
  for (const char* id : {"P1.1", "P1.13", "P1.15", "P1.12", "P2.10"}) {
    const core::Pipeline* p = core::FindPipeline(id);
    auto row = core::ComparePipeline(p->id, p->text, optimizer, naive,
                                     /*repeats=*/2);
    if (!row.ok()) {
      std::printf("%s failed: %s\n", id, row.status().ToString().c_str());
      return 1;
    }
    core::PrintComparisonRow(*row);
  }
  return 0;
}

}  // namespace

int main() {
  std::printf("Appendix C/D/E reproduction: naive cost model + sparse "
              "bindings for M\n");
  core::LaBenchConfig dense;
  if (RunBindings("Syn1 in the role of M (dense)", dense, 50) != 0) return 1;

  core::LaBenchConfig amazon = dense;
  amazon.m_sparsity = 0.000075;  // AS: ultra sparse.
  if (RunBindings("AS in the role of M (ultra sparse, 0.0075%)", amazon,
                  51) != 0) {
    return 1;
  }

  core::LaBenchConfig netflix = dense;
  netflix.m_sparsity = 0.014;  // NS: mildly sparse.
  if (RunBindings("NS in the role of M (1.4%)", netflix, 52) != 0) return 1;

  std::printf("\nPaper shape: with AS-as-M the P1.1 rewrite is cost-neutral "
              "(no dense intermediate to avoid); with NS-as-M ~1.8x; dense "
              "bindings as in Figure 5.\n");
  return 0;
}
