// Mutable-data-layer benchmark: what mutation costs a long-lived serving
// session, and what the incremental machinery buys back.
//
//  (1) Append-heavy view maintenance: a Gram view t(A) %*% A over a growing
//      A. Incremental delta refresh (V ← V + t(Δ)Δ, O(|Δ|) work) against
//      full recomputation (O(|A|) work) per append batch, verified at 1e-9.
//  (2) Warmed-latency recovery: a session serving a cached pipeline takes
//      one Update(); the next Run() pays a single re-derive and the cache
//      is warm again — compared against the cold-restart alternative
//      (building a fresh session and re-paying RW_find).
//
//   $ ./build/bench/bench_update_refresh [--json=PATH]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/hadad.h"

using namespace hadad;  // NOLINT

namespace {

constexpr int64_t kBaseRows = 20000;
constexpr int64_t kCols = 64;
constexpr int64_t kBatchRows = 200;
constexpr int kBatches = 20;

void BenchAppendRefresh(bench::JsonWriter& json) {
  std::printf("-- append-heavy view maintenance --\n");
  std::printf("   A: %lld x %lld base rows, %d append batches of %lld rows\n",
              static_cast<long long>(kBaseRows),
              static_cast<long long>(kCols), kBatches,
              static_cast<long long>(kBatchRows));

  Rng rng(42);
  matrix::Matrix a0 = matrix::RandomDense(rng, kBaseRows, kCols);
  std::vector<matrix::Matrix> batches;
  for (int i = 0; i < kBatches; ++i) {
    batches.push_back(matrix::RandomDense(rng, kBatchRows, kCols));
  }

  // Incremental: the session's user view delta-refreshes on every append.
  auto incremental = api::SessionBuilder()
                         .Put("A", a0)
                         .AddView("G", "t(A) %*% A")
                         .Build()
                         .value();
  Timer inc_timer;
  for (const matrix::Matrix& batch : batches) {
    if (!incremental->Append("A", batch).ok()) {
      std::printf("append failed\n");
      return;
    }
  }
  const double inc_seconds = inc_timer.ElapsedSeconds();

  // Full recomputation baseline: the same appends with the view recomputed
  // from scratch each time (what a frozen-workspace design has to do).
  engine::Workspace ws;
  ws.Put("A", a0);
  auto def = la::ParseExpression("t(A) %*% A").value();
  Timer full_timer;
  matrix::Matrix full_view;
  for (const matrix::Matrix& batch : batches) {
    if (!ws.Append("A", batch).ok()) return;
    auto v = engine::Execute(*def, ws);
    if (!v.ok()) return;
    full_view = std::move(v).value();
  }
  const double full_seconds = full_timer.ElapsedSeconds();

  const matrix::Matrix* inc_view = incremental->workspace().Find("G");
  const bool equal =
      inc_view != nullptr && inc_view->ApproxEquals(full_view, 1e-9);
  std::printf("   incremental (V <- V + f(dA)):  %8.1f ms total\n",
              inc_seconds * 1e3);
  std::printf("   full recompute per batch:      %8.1f ms total\n",
              full_seconds * 1e3);
  std::printf("   speedup %.1fx, results %s at 1e-9\n\n",
              full_seconds / inc_seconds, equal ? "MATCH" : "MISMATCH");
  json.Add("append_incremental_refresh", inc_seconds,
           full_seconds / inc_seconds, /*threads=*/1,
           /*verified_tolerance=*/1e-9);
  json.Add("append_full_recompute", full_seconds, /*speedup=*/-1.0,
           /*threads=*/1, /*verified_tolerance=*/1e-9);
  if (!equal) std::exit(1);
}

void BenchWarmedLatencyRecovery(bench::JsonWriter& json) {
  std::printf("-- warmed-query latency across an update --\n");
  Rng rng(7);
  matrix::Matrix m = matrix::RandomDense(rng, 2000, 64);
  matrix::Matrix n = matrix::RandomDense(rng, 64, 2000);
  matrix::Matrix m2 = matrix::RandomDense(rng, 2000, 64);
  const std::string query = "colSums((M %*% N) %*% M)";

  auto session =
      api::SessionBuilder().Put("M", m).Put("N", n).Build().value();
  Timer cold;
  if (!session->Run(query).ok()) return;
  const double cold_ms = cold.ElapsedSeconds() * 1e3;

  auto warm_ms = [&]() {
    double best = 1e300;
    for (int i = 0; i < 3; ++i) {
      Timer t;
      if (!session->Run(query).ok()) return -1.0;
      best = std::min(best, t.ElapsedSeconds());
    }
    return best * 1e3;
  };
  const double warm_before = warm_ms();

  Timer update;
  if (!session->Update("M", m2).ok()) return;
  const double update_ms = update.ElapsedSeconds() * 1e3;
  Timer rederive;
  if (!session->Run(query).ok()) return;
  const double rederive_ms = rederive.ElapsedSeconds() * 1e3;
  const double warm_after = warm_ms();

  // The frozen-workspace alternative: rebuild the whole session.
  Timer restart;
  auto fresh =
      api::SessionBuilder().Put("M", m2).Put("N", n).Build().value();
  if (!fresh->Run(query).ok()) return;
  const double restart_ms = restart.ElapsedSeconds() * 1e3;

  std::printf("   cold first run:                 %8.2f ms\n", cold_ms);
  std::printf("   warmed run (pre-update):        %8.2f ms\n", warm_before);
  std::printf("   Update(M):                      %8.2f ms\n", update_ms);
  std::printf("   first run after update:         %8.2f ms (one re-derive)\n",
              rederive_ms);
  std::printf("   warmed run (post-update):       %8.2f ms\n", warm_after);
  std::printf("   cold restart alternative:       %8.2f ms (rebuild + run)\n",
              restart_ms);
  std::printf("   recovery vs restart: %.1fx\n\n",
              restart_ms / rederive_ms);
  json.Add("update_then_rederive", rederive_ms / 1e3,
           restart_ms / rederive_ms, /*threads=*/1,
           /*verified_tolerance=*/-1.0);
  json.Add("cold_restart_baseline", restart_ms / 1e3, /*speedup=*/-1.0,
           /*threads=*/1, /*verified_tolerance=*/-1.0);
  json.Add("warmed_run_post_update", warm_after / 1e3, /*speedup=*/-1.0,
           /*threads=*/1, /*verified_tolerance=*/-1.0);
  // Latency distribution across every Run() of this scenario (cold, warm,
  // post-update re-derive), from the session's hadad_run_seconds histogram.
  const obs::Histogram* run_seconds =
      session->metrics().FindHistogram("hadad_run_seconds");
  if (run_seconds != nullptr && run_seconds->Count() > 0) {
    json.AddRunPercentiles("update_recovery_runs",
                           obs::HistogramQuantile(*run_seconds, 0.50),
                           obs::HistogramQuantile(*run_seconds, 0.95),
                           obs::HistogramQuantile(*run_seconds, 0.99));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json("bench_update_refresh", argc, argv);
  std::printf("=== mutable data layer: update & refresh ===\n\n");
  BenchAppendRefresh(json);
  BenchWarmedLatencyRecovery(json);
  return json.Write() ? 0 : 1;
}
