#ifndef HADAD_BENCH_HYBRID_BENCH_H_
#define HADAD_BENCH_HYBRID_BENCH_H_

// Shared driver for the micro-hybrid benchmarks (Figures 10 and 11): runs
// every query both ways —
//   original:   Q_RA (join + N construction) + Q_FLA (level filter in
//               LA-land) + Q_LA as stated;
//   HADAD:      RW_RA (level filter pushed into the relational selection) +
//               RW_find + the rewritten Q_LA.
// — and prints the stacked times the paper's figures show.

#include <cstdio>
#include <memory>

#include "common/timer.h"
#include "core/hadad.h"

namespace hadad::bench {

inline int RunMicroHybrid(hybrid::BenchmarkKind kind,
                          const hybrid::DatasetConfig& config,
                          const char* label) {
  std::printf("\n== %s ==\n", label);
  std::printf("entities=%lld dims=%lld categories=%lld selection=%.2f\n",
              static_cast<long long>(config.num_entities),
              static_cast<long long>(config.num_dims),
              static_cast<long long>(config.num_categories),
              config.selection_fraction);
  Rng rng(static_cast<uint64_t>(config.num_entities) * 31 +
          static_cast<uint64_t>(config.selection_fraction * 100));
  hybrid::DatasetConfig cfg = config;
  cfg.kind = kind;
  hybrid::Dataset dataset = hybrid::GenerateDataset(rng, cfg);
  constexpr double kMaxLevel = 4.0;

  // Original path: Q_RA without pushdown, then the LA-stage filter.
  auto unpushed = hybrid::Preprocess(dataset, /*push_level_filter=*/false,
                                     kMaxLevel);
  if (!unpushed.ok()) {
    std::printf("preprocess failed: %s\n",
                unpushed.status().ToString().c_str());
    return 1;
  }
  hadad::Timer fla_timer;
  matrix::Matrix nf = hybrid::FilterLevelAtMost(unpushed->n, kMaxLevel);
  const double qfla_seconds = fla_timer.ElapsedSeconds();

  // HADAD path: the selection is pushed into Q_RA.
  auto pushed = hybrid::Preprocess(dataset, /*push_level_filter=*/true,
                                   kMaxLevel);
  if (!pushed.ok()) return 1;

  auto session = hybrid::BuildHybridSession(rng, *unpushed, nf,
                                            pacb::EstimatorKind::kNaive);
  if (!session.ok()) {
    std::printf("session failed: %s\n", session.status().ToString().c_str());
    return 1;
  }

  std::printf("%-5s %9s %9s %9s | %9s %9s %9s %8s %6s  %s\n", "query",
              "QRA[ms]", "QFLA[ms]", "QLA[ms]", "RWRA[ms]", "RWfnd[ms]",
              "RWLA[ms]", "speedup", "agree", "rewriting");
  for (const hybrid::HybridQuery& q : hybrid::MicroBenchmarkQueries()) {
    auto prepared = (*session)->Prepare(q.qla);
    if (!prepared.ok()) {
      std::printf("%s optimize failed: %s\n", q.id.c_str(),
                  prepared.status().ToString().c_str());
      return 1;
    }
    engine::ExecStats original_stats;
    auto original_value = prepared->ExecuteOriginal(&original_stats);
    if (!original_value.ok()) {
      std::printf("%s original failed: %s\n", q.id.c_str(),
                  original_value.status().ToString().c_str());
      return 1;
    }
    engine::ExecStats rewrite_stats;
    auto rewrite_value = prepared->Execute(&rewrite_stats);
    if (!rewrite_value.ok()) {
      std::printf("%s rewrite failed (%s): %s\n", q.id.c_str(),
                  la::ToString(prepared->plan()).c_str(),
                  rewrite_value.status().ToString().c_str());
      return 1;
    }
    const double rw_find_seconds = prepared->rewrite().optimize_seconds;
    const bool agree = original_value->ApproxEquals(*rewrite_value, 1e-5);
    const double total_original =
        unpushed->ra_seconds + qfla_seconds + original_stats.seconds;
    const double total_hadad =
        pushed->ra_seconds + rw_find_seconds + rewrite_stats.seconds;
    std::printf("%-5s %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f %7.2fx %6s  %s\n",
                q.id.c_str(), unpushed->ra_seconds * 1e3, qfla_seconds * 1e3,
                original_stats.seconds * 1e3, pushed->ra_seconds * 1e3,
                rw_find_seconds * 1e3, rewrite_stats.seconds * 1e3,
                total_hadad > 0 ? total_original / total_hadad : 1.0,
                agree ? "yes" : "NO",
                la::ToString(prepared->plan()).c_str());
  }
  return 0;
}

}  // namespace hadad::bench

#endif  // HADAD_BENCH_HYBRID_BENCH_H_
