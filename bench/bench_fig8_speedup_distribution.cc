// Figure 8: the distribution of rewriting speedups across the 38 P¬Opt
// pipelines on the R-like (kNaive) engine with the MNC cost model. The
// paper splits the distribution at 10x: 25 pipelines below (87% of them at
// least 1.5x) and 13 at 10x-60x, with P1.5 an ~1000x outlier.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  std::printf("Figure 8 reproduction: P¬Opt speedup distribution "
              "(kNaive engine, MNC estimator)\n");
  Rng rng(42);
  core::LaBenchConfig config;
  engine::Workspace ws = core::MakeLaBenchWorkspace(rng, config);
  pacb::OptimizerOptions options;
  options.estimator = pacb::EstimatorKind::kMnc;
  pacb::Optimizer optimizer(ws.BuildMetaCatalog(), options);
  optimizer.SetData(&ws.data());
  engine::Engine naive(engine::Profile::kNaive, &ws);

  struct Entry {
    std::string id;
    double speedup;
  };
  std::vector<Entry> entries;
  core::PrintComparisonHeader("all P¬Opt pipelines");
  for (const core::Pipeline& p : core::LaBenchmark()) {
    if (p.cls != core::PipelineClass::kNotOpt) continue;
    auto row = core::ComparePipeline(p.id, p.text, optimizer, naive,
                                     /*repeats=*/2);
    if (!row.ok()) {
      std::printf("%s failed: %s\n", p.id.c_str(),
                  row.status().ToString().c_str());
      return 1;
    }
    core::PrintComparisonRow(*row);
    entries.push_back({p.id, row->speedup});
  }

  int below_1_5 = 0, mid = 0, high = 0;
  double best = 0;
  std::string best_id;
  for (const Entry& e : entries) {
    if (e.speedup < 1.5) {
      ++below_1_5;
    } else if (e.speedup < 10.0) {
      ++mid;
    } else {
      ++high;
    }
    if (e.speedup > best) {
      best = e.speedup;
      best_id = e.id;
    }
  }
  std::printf("\nDistribution over %zu pipelines: <1.5x: %d, 1.5x-10x: %d, "
              ">=10x: %d. Max: %s at %.1fx.\n",
              entries.size(), below_1_5, mid, high, best_id.c_str(), best);
  std::printf("Paper: 25 pipelines <10x (87%% of those >=1.5x), 13 at "
              "10-60x, P1.5 ~1000x.\n");
  return 0;
}
