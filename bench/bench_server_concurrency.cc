// Serving-layer concurrency benchmark (src/server/): four clients
// submitting through one server::Server over a shared session must achieve
// higher aggregate throughput than the same four client workloads run as
// sequential single-session runs — with bit-identical results.
//
// The baseline models today's embedded shape: each client stands up its own
// api::Session (own plan cache, own substrate) and runs the serving mix,
// one client after another. Every session pays the full RW_find rewrite
// search per pipeline. The served shape runs the same four workloads
// concurrently over ONE shared substrate: the cross-client plan cache pays
// each pipeline's optimization once and every other client rides the
// hit path, while dispatcher concurrency overlaps the clients' request
// streams. Also demonstrates that a deadline-bounded request fails with
// the typed error and leaves the dispatcher pool serving.
//
//   $ ./build/bench/bench_server_concurrency [--json=PATH]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "bench_json.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/data.h"
#include "core/workloads.h"
#include "matrix/generate.h"
#include "obs/metrics.h"
#include "server/server.h"

using namespace hadad;  // NOLINT

namespace {

constexpr int kClients = 4;
constexpr int kRounds = 2;  // Each client runs the mix this many times.

// The serving mix from bench_session_cache: P¬Opt pipelines where RW_find
// buys a better plan and P_Opt ones where it is pure overhead — both kinds
// of optimization cost are amortized by the shared plan cache.
const char* kPipelineIds[] = {"P1.1",  "P1.4",  "P1.13", "P1.15",
                              "P2.10", "P2.21", "P1.29"};
constexpr int kPipelines =
    static_cast<int>(sizeof(kPipelineIds) / sizeof(kPipelineIds[0]));

std::shared_ptr<api::Session> MakeSession(const engine::Workspace& ws) {
  api::SessionBuilder builder;
  for (const auto& [name, m] : ws.data()) builder.Put(name, *m);
  auto session = builder.Threads(kClients).Build();
  if (!session.ok()) {
    std::printf("session failed: %s\n", session.status().ToString().c_str());
    std::exit(1);
  }
  return *session;
}

bool BitIdentical(const matrix::Matrix& a, const matrix::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const matrix::DenseMatrix da = a.ToDense();
  const matrix::DenseMatrix db = b.ToDense();
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      if (da.At(i, j) != db.At(i, j)) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json("bench_server_concurrency", argc, argv);

  Rng rng(42);
  const engine::Workspace ws = core::MakeLaBenchWorkspace(rng);
  std::vector<std::string> queries;
  queries.reserve(kPipelines);
  for (const char* id : kPipelineIds) {
    const core::Pipeline* p = core::FindPipeline(id);
    if (p == nullptr) {
      std::printf("unknown pipeline %s\n", id);
      return 1;
    }
    queries.push_back(p->text);
  }

  // Reference results from a throwaway session; every run in both measured
  // phases must match these bit-for-bit.
  std::vector<matrix::Matrix> expected;
  {
    std::shared_ptr<api::Session> reference = MakeSession(ws);
    for (const std::string& q : queries) {
      auto r = reference->Run(q);
      if (!r.ok()) {
        std::printf("reference failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
      expected.push_back(std::move(*r));
    }
  }

  // Phase 1: four sequential single-session runs — one fresh (cold-cache)
  // session per client, one client after another. Sessions are built
  // before the timer so only query traffic is measured.
  std::vector<std::shared_ptr<api::Session>> solo;
  solo.reserve(kClients);
  for (int c = 0; c < kClients; ++c) solo.push_back(MakeSession(ws));
  bool identical_seq = true;
  Timer seq;
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kPipelines; ++i) {
        const int q = (i + c) % kPipelines;
        auto out = solo[static_cast<size_t>(c)]->Run(queries[q]);
        if (!out.ok()) return 1;
        if (!BitIdentical(expected[static_cast<size_t>(q)], *out)) {
          identical_seq = false;
        }
      }
    }
  }
  const double seq_s = seq.ElapsedSeconds();
  solo.clear();

  // Phase 2: the same four client workloads, concurrently through the
  // server over one fresh shared session. Each pipeline's RW_find runs
  // once for the whole fleet; clients start at staggered offsets so the
  // first round's cold misses spread across different plans.
  std::shared_ptr<api::Session> session = MakeSession(ws);
  server::ServerOptions options;
  options.max_in_flight = kClients;
  auto server = server::Server::Create(session, options);
  if (!server.ok()) {
    std::printf("server failed: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::atomic<bool> identical_conc{true};
  std::atomic<int> failures{0};
  Timer conc;
  std::vector<std::thread> submitters;
  submitters.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    submitters.emplace_back([&, c] {
      auto client = (*server)->Connect("client" + std::to_string(c));
      for (int r = 0; r < kRounds; ++r) {
        for (int i = 0; i < kPipelines; ++i) {
          const int q = (i + c) % kPipelines;
          auto out = client->Run(queries[static_cast<size_t>(q)]);
          if (!out.ok()) {
            ++failures;
          } else if (!BitIdentical(expected[static_cast<size_t>(q)], *out)) {
            identical_conc = false;
          }
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  const double conc_s = conc.ElapsedSeconds();
  const double speedup = conc_s > 0 ? seq_s / conc_s : 0.0;
  const bool identical = identical_seq && identical_conc;

  // A 10ms deadline on a warmed multi-node GEMM chain (~hundreds of ms)
  // fails typed at a DAG node launch — and the pool keeps serving.
  const char* chain = "t(A) %*% (A %*% (t(A) %*% A))";
  auto deadline_client = (*server)->Connect("hurried");
  if (!deadline_client->Run(chain).ok()) return 1;
  server::RequestOptions hurried;
  hurried.deadline = std::chrono::milliseconds(10);
  auto bounded = deadline_client->Run(chain, hurried);
  const bool deadline_ok =
      !bounded.ok() &&
      bounded.status().code() == StatusCode::kDeadlineExceeded &&
      deadline_client->Run(queries[0]).ok();

  // Phase 3: mixed read/write. The same reader fleet runs while a writer
  // walks base matrix B through pre-generated versions. Baseline: the
  // pre-MVCC shape — one big mutex serializes every operation, so each
  // install stalls the whole fleet and each read excludes every other.
  // (A reader-writer lock is deliberately NOT the baseline: glibc's
  // rwlock prefers readers, so a continuously-reading fleet starves the
  // writer to the end of the phase and its reads dodge every plan
  // invalidation wave — the baseline would be measuring a different,
  // lighter workload.) MVCC: no external lock; writers install versions
  // mid-stream while readers execute against pinned snapshots. Both
  // phases absorb the same paced mutation stream and hence the same
  // invalidation waves.
  const matrix::Matrix* b_live = ws.Find("B");
  std::vector<matrix::Matrix> b_versions;
  for (int v = 0; v < 6; ++v) {
    b_versions.push_back(
        matrix::RandomDense(rng, b_live->rows(), b_live->cols()));
  }
  // Both phases apply the SAME fixed mutation stream (kWriterUpdates
  // installs of B, paced evenly across the readers' progress), so the
  // measured difference is purely who waits on whom — not how many plan
  // invalidations each phase happened to absorb.
  constexpr int kWriterUpdates = 6;
  const int total_reads = kClients * kRounds * kPipelines;
  auto run_mixed = [&](bool serialize) -> double {
    std::shared_ptr<api::Session> mixed_session = MakeSession(ws);
    server::ServerOptions mixed_options;
    mixed_options.max_in_flight = kClients;
    auto mixed_server = server::Server::Create(mixed_session, mixed_options);
    if (!mixed_server.ok()) return -1.0;
    std::mutex big_lock;
    std::atomic<int> reads_done{0};
    std::atomic<int> mixed_failures{0};
    Timer timer;
    std::vector<std::thread> readers;
    readers.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      readers.emplace_back([&, c] {
        auto client =
            (*mixed_server)->Connect("mixed" + std::to_string(c));
        for (int r = 0; r < kRounds; ++r) {
          for (int i = 0; i < kPipelines; ++i) {
            const int q = (i + c) % kPipelines;
            Result<matrix::Matrix> out = Status::Internal("unset");
            if (serialize) {
              std::lock_guard<std::mutex> hold(big_lock);
              out = client->Run(queries[static_cast<size_t>(q)]);
            } else {
              out = client->Run(queries[static_cast<size_t>(q)]);
            }
            if (!out.ok()) ++mixed_failures;
            reads_done.fetch_add(1, std::memory_order_release);
          }
        }
      });
    }
    std::thread writer([&] {
      for (int u = 0; u < kWriterUpdates; ++u) {
        // Spread the installs across the read stream.
        const int gate = (u + 1) * total_reads / (kWriterUpdates + 1);
        // Sleep-poll: a yield-spin would compete with the readers for
        // cores and skew both phases' measurements identically upward.
        while (reads_done.load(std::memory_order_acquire) < gate) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        Status st;
        if (serialize) {
          std::lock_guard<std::mutex> hold(big_lock);
          st = mixed_session->Update(
              "B", b_versions[static_cast<size_t>(u) % b_versions.size()]);
        } else {
          st = mixed_session->Update(
              "B", b_versions[static_cast<size_t>(u) % b_versions.size()]);
        }
        if (!st.ok()) ++mixed_failures;
      }
    });
    for (std::thread& t : readers) t.join();
    writer.join();
    const double elapsed = timer.ElapsedSeconds();
    (*mixed_server)->Shutdown();
    return mixed_failures.load() == 0 ? elapsed : -1.0;
  };
  const double mixed_serialized_s = run_mixed(/*serialize=*/true);
  const double mixed_mvcc_s = run_mixed(/*serialize=*/false);
  const bool mixed_ok = mixed_serialized_s > 0 && mixed_mvcc_s > 0;
  const double mixed_speedup =
      mixed_ok ? mixed_serialized_s / mixed_mvcc_s : 0.0;
  // On a host with real parallelism MVCC must beat full serialization
  // outright. A single hardware thread cannot convert concurrency into
  // throughput — every thread is CPU-bound, so elapsed time is total work
  // and blocking costs the baseline nothing; there the gate instead bounds
  // MVCC's coordination overhead (snapshot pinning, dispatcher handoffs,
  // interleaved working sets) at 10%.
  const double mixed_floor =
      std::thread::hardware_concurrency() >= 2 ? 1.0 : 0.9;

  std::printf("== server concurrency: %d clients x %d rounds x %d pipelines "
              "==\n",
              kClients, kRounds, kPipelines);
  std::printf("sequential (4 cold single-session runs): %8.1f ms\n",
              seq_s * 1e3);
  std::printf("concurrent (shared substrate + cache):   %8.1f ms\n",
              conc_s * 1e3);
  std::printf("aggregate throughput gain:               %8.2fx\n", speedup);
  std::printf("bit-identical results: %s\n", identical ? "yes" : "NO");
  std::printf("deadline-bounded request: %s\n",
              deadline_ok ? "typed error, pool kept serving"
                          : "FAILED contract");
  std::printf("mixed r/w, big-mutex serialized:         %8.1f ms\n",
              mixed_serialized_s * 1e3);
  std::printf("mixed r/w, MVCC snapshot reads:          %8.1f ms\n",
              mixed_mvcc_s * 1e3);
  std::printf("mixed r/w throughput gain:               %8.2fx\n",
              mixed_speedup);

  json.Add("whole_workload_sequential", seq_s, /*speedup=*/-1.0,
           /*threads=*/1, /*verified_tolerance=*/-1.0);
  json.Add("four_clients_concurrent", conc_s, speedup, /*threads=*/kClients,
           /*verified_tolerance=*/0.0);  // 0.0 = verified bit-identical.
  json.Add("mixed_rw_serialized", mixed_serialized_s, /*speedup=*/-1.0,
           /*threads=*/1, /*verified_tolerance=*/-1.0);
  json.Add("mixed_rw_mvcc", mixed_mvcc_s, mixed_speedup,
           /*threads=*/kClients, /*verified_tolerance=*/-1.0);
  const obs::Histogram* run_seconds =
      session->metrics().FindHistogram("hadad_run_seconds");
  if (run_seconds != nullptr && run_seconds->Count() > 0) {
    json.AddRunPercentiles("served_runs",
                           obs::HistogramQuantile(*run_seconds, 0.50),
                           obs::HistogramQuantile(*run_seconds, 0.95),
                           obs::HistogramQuantile(*run_seconds, 0.99));
  }
  (*server)->Shutdown();
  if (!json.Write()) return 1;
  if (failures > 0 || !identical || !deadline_ok) return 1;
  if (speedup <= 1.0) {
    std::printf("FAIL: concurrent serving did not beat sequential\n");
    return 1;
  }
  if (!mixed_ok || mixed_speedup < mixed_floor) {
    std::printf("FAIL: MVCC mixed read/write fell below the mutex-"
                "serialized baseline (gain %.2fx, floor %.2fx)\n",
                mixed_speedup, mixed_floor);
    return 1;
  }
  return 0;
}
