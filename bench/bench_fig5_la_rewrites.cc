// Figure 5: P1.1, P1.3, P1.4 and P1.15 before/after HADAD's rewriting (no
// views), using the MNC cost model. The paper reports speedups of roughly
// 1.3x-4x for P1.1 across systems, large wins for P1.3 ((CD)^-1 computes one
// inverse instead of two), sparse-aware wins for P1.4 with a sparse A, and
// the classic chain-order win for P1.15.

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  std::printf("Figure 5 reproduction: LA rewriting without views "
              "(MNC estimator)\n");
  std::printf("Paper shape: every pipeline improves; P1.15's win grows with "
              "n^2/k^2; P1.4 improves when A is sparse.\n");

  // Dense bindings.
  {
    Rng rng(42);
    core::LaBenchConfig config;
    engine::Workspace ws = core::MakeLaBenchWorkspace(rng, config);
    pacb::OptimizerOptions options;
    options.estimator = pacb::EstimatorKind::kMnc;
    pacb::Optimizer optimizer(ws.BuildMetaCatalog(), options);
    optimizer.SetData(&ws.data());
    engine::Engine naive(engine::Profile::kNaive, &ws);
    core::PrintComparisonHeader("dense bindings, kNaive engine (R-like)");
    for (const char* id : {"P1.1", "P1.3", "P1.15"}) {
      const core::Pipeline* p = core::FindPipeline(id);
      auto row = core::ComparePipeline(p->id, p->text, optimizer, naive);
      if (!row.ok()) {
        std::printf("%s failed: %s\n", id, row.status().ToString().c_str());
        return 1;
      }
      core::PrintComparisonRow(*row);
    }
  }

  // Sparse A for P1.4 (the paper's AL1 binding).
  {
    Rng rng(43);
    core::LaBenchConfig config;
    config.a_sparsity = 0.000075;  // Amazon-like ultra sparse.
    engine::Workspace ws = core::MakeLaBenchWorkspace(rng, config);
    pacb::OptimizerOptions options;
    options.estimator = pacb::EstimatorKind::kMnc;
    pacb::Optimizer optimizer(ws.BuildMetaCatalog(), options);
    optimizer.SetData(&ws.data());
    engine::Engine naive(engine::Profile::kNaive, &ws);
    core::PrintComparisonHeader("P1.4 with ultra-sparse A (AL1 role)");
    const core::Pipeline* p = core::FindPipeline("P1.4");
    auto row = core::ComparePipeline(p->id, p->text, optimizer, naive);
    if (!row.ok()) {
      std::printf("P1.4 failed: %s\n", row.status().ToString().c_str());
      return 1;
    }
    core::PrintComparisonRow(*row);
  }

  // The SystemML-like engine already reorders chains internally: HADAD's
  // rewriting is redundant there for P1.15 (the P¬Opt_SM effect, §9.1.3).
  {
    Rng rng(44);
    engine::Workspace ws = core::MakeLaBenchWorkspace(rng, {});
    pacb::OptimizerOptions options;
    options.estimator = pacb::EstimatorKind::kMnc;
    pacb::Optimizer optimizer(ws.BuildMetaCatalog(), options);
    optimizer.SetData(&ws.data());
    engine::Engine smart(engine::Profile::kSmart, &ws);
    core::PrintComparisonHeader(
        "kSmart engine (SystemML-like): P1.15 redundant, P1.1 still wins");
    for (const char* id : {"P1.15", "P1.1"}) {
      const core::Pipeline* p = core::FindPipeline(id);
      auto row = core::ComparePipeline(p->id, p->text, optimizer, smart);
      if (!row.ok()) return 1;
      core::PrintComparisonRow(*row);
    }
  }
  return 0;
}
