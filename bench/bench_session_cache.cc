// api::Session plan-cache benchmark: the serving-path story behind
// Session::Run(). A cold Run() pays parse + RW_find (the PACB chase) +
// execution; a warm Run() of the same canonical expression fetches the
// cached plan under a shared lock and pays execution only. This driver
// measures both paths per pipeline, reports the hit-path speedup, and
// finishes with a multi-threaded serving loop where every thread shares
// one session (and therefore one plan cache).
//
//   $ ./build/bench/bench_session_cache [--json=PATH]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/timer.h"
#include "core/hadad.h"

using namespace hadad;  // NOLINT

namespace {

std::shared_ptr<api::Session> MakeBenchSession() {
  Rng rng(42);
  core::LaBenchConfig config;
  engine::Workspace ws = core::MakeLaBenchWorkspace(rng, config);
  api::SessionBuilder builder;
  for (const auto& [name, m] : ws.data()) builder.Put(name, *m);
  auto session = builder.Build();
  if (!session.ok()) {
    std::printf("session failed: %s\n", session.status().ToString().c_str());
    std::exit(1);
  }
  return *session;
}

struct PathTimes {
  double cold_ms = 0.0;  // Run() with an empty cache: RW_find + execution.
  double warm_ms = 0.0;  // Run() with a cached plan: execution only.
};

PathTimes MeasurePipeline(api::Session& session, const std::string& text,
                          int repeats) {
  PathTimes times;
  double cold_best = 1e300;
  double warm_best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    session.ClearPlanCache();
    Timer cold;
    if (!session.Run(text).ok()) return times;
    cold_best = std::min(cold_best, cold.ElapsedSeconds());
    Timer warm;
    if (!session.Run(text).ok()) return times;
    warm_best = std::min(warm_best, warm.ElapsedSeconds());
  }
  times.cold_ms = cold_best * 1e3;
  times.warm_ms = warm_best * 1e3;
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json("bench_session_cache", argc, argv);
  std::shared_ptr<api::Session> session = MakeBenchSession();
  // A serving mix: P¬Opt pipelines (RW_find buys a better plan) and P_Opt
  // ones (RW_find is pure overhead — exactly what the cache erases).
  const std::vector<std::string> ids = {"P1.1",  "P1.4",  "P1.13", "P1.15",
                                        "P2.10", "P2.21", "P1.29"};

  std::printf("== Session plan cache: cold Run (RW_find + exec) vs warm Run "
              "(cached plan) ==\n");
  std::printf("%-7s %12s %12s %10s\n", "id", "cold[ms]", "warm[ms]",
              "speedup");
  double total_cold = 0.0;
  double total_warm = 0.0;
  for (const std::string& id : ids) {
    const core::Pipeline* p = core::FindPipeline(id);
    if (p == nullptr) continue;
    PathTimes t = MeasurePipeline(*session, p->text, /*repeats=*/3);
    if (t.cold_ms == 0.0 && t.warm_ms == 0.0) {
      std::printf("%-7s failed\n", id.c_str());
      continue;
    }
    total_cold += t.cold_ms;
    total_warm += t.warm_ms;
    const double speedup = t.warm_ms > 0 ? t.cold_ms / t.warm_ms : 0.0;
    std::printf("%-7s %12.3f %12.3f %9.2fx\n", id.c_str(), t.cold_ms,
                t.warm_ms, speedup);
    json.Add(id + "_cold_run", t.cold_ms / 1e3, /*speedup=*/-1.0,
             /*threads=*/1, /*verified_tolerance=*/-1.0);
    json.Add(id + "_warm_run", t.warm_ms / 1e3, speedup, /*threads=*/1,
             /*verified_tolerance=*/-1.0);
  }
  std::printf("%-7s %12.3f %12.3f %9.2fx   <- cache hit-path speedup\n",
              "total", total_cold, total_warm,
              total_warm > 0 ? total_cold / total_warm : 0.0);
  json.Add("serving_mix_warm_total", total_warm / 1e3,
           total_warm > 0 ? total_cold / total_warm : -1.0, /*threads=*/1,
           /*verified_tolerance=*/-1.0);

  // Multi-threaded serving: every thread Run()s the same mix against one
  // shared session. After the first miss per pipeline, all traffic is
  // hit-path and the shared_mutex lets readers proceed in parallel.
  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 25;
  session->ClearPlanCache();
  const api::SessionStats before = session->stats();
  std::atomic<int> failures{0};
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&session, &ids, &failures, t] {
      for (int i = 0; i < kRunsPerThread; ++i) {
        const core::Pipeline* p =
            core::FindPipeline(ids[static_cast<size_t>(t + i) % ids.size()]);
        if (p == nullptr || !session->Run(p->text).ok()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();

  const api::SessionStats after = session->stats();
  const auto runs = after.runs - before.runs;
  const auto prepares = after.prepares - before.prepares;
  const auto hits = after.cache_hits - before.cache_hits;
  const auto misses = after.cache_misses - before.cache_misses;
  std::printf("\n== %d threads x %d runs, one shared session ==\n", kThreads,
              kRunsPerThread);
  std::printf("wall %.1f ms, %.0f runs/s, failures %d\n", wall_s * 1e3,
              static_cast<double>(runs) / wall_s, failures.load());
  std::printf("optimizer calls %lld, cache hits %lld (%.1f%% hit rate), "
              "cached plans %lld\n",
              static_cast<long long>(prepares),
              static_cast<long long>(hits),
              100.0 * static_cast<double>(hits) /
                  static_cast<double>(hits + misses),
              static_cast<long long>(session->plan_cache_size()));
  json.Add("shared_session_serving_loop", wall_s, /*speedup=*/-1.0,
           /*threads=*/kThreads, /*verified_tolerance=*/-1.0);
  // Latency distribution of every Run() above, read off the session's
  // hadad_run_seconds histogram.
  const obs::Histogram* run_seconds =
      session->metrics().FindHistogram("hadad_run_seconds");
  if (run_seconds != nullptr && run_seconds->Count() > 0) {
    const double p50 = obs::HistogramQuantile(*run_seconds, 0.50);
    const double p95 = obs::HistogramQuantile(*run_seconds, 0.95);
    const double p99 = obs::HistogramQuantile(*run_seconds, 0.99);
    std::printf("run_seconds p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
                p50 * 1e3, p95 * 1e3, p99 * 1e3);
    json.AddRunPercentiles("all_runs", p50, p95, p99);
  }
  if (!json.Write()) return 1;
  return failures.load() == 0 ? 0 : 1;
}
