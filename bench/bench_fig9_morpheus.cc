// Figure 9: Morpheus with HADAD's rewritings vs Morpheus alone, over the
// PK-FK tuple-ratio x feature-ratio grid (nR and dS fixed). The paper
// reports up to 125x for P1.12 (colSums pushdown enabled), up to 15x for
// P2.10, up to 20x for P2.11 (sum distribution over the element-wise add
// Morpheus cannot factorize) and up to 4.5x for P2.15.

#include <cstdio>
#include <memory>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

namespace {

struct GridCase {
  const char* id;
  const char* original;  // Over normalized M and aux G/G2/G3.
  const char* paper;
};

double TimeMorpheus(const morpheus::MorpheusEngine& engine,
                    const la::ExprPtr& expr) {
  double best = 1e300;
  for (int i = 0; i < 2; ++i) {
    engine::ExecStats stats;
    auto out = engine.Run(expr, &stats);
    HADAD_CHECK_MSG(out.ok(), out.status().ToString().c_str());
    best = std::min(best, stats.seconds);
  }
  return best;
}

}  // namespace

int main() {
  std::printf("Figure 9 reproduction: Morpheus +/- HADAD over the PK-FK "
              "grid (nR=500, dS=20)\n");
  const GridCase cases[] = {
      {"P1.12", "colSums(M %*% G)", "up to 125x"},
      {"P2.10", "rowSums(G2 %*% M)", "up to 15x"},
      {"P2.11", "sum(G3 + M)", "up to 20x"},
      {"P2.15", "sum(rowSums(M))", "up to 4.5x"},
  };
  const double tuple_ratios[] = {2, 5, 10, 20};
  const double feature_ratios[] = {1, 3, 5};

  for (const GridCase& c : cases) {
    std::printf("\n-- %s: %s (paper: %s) --\n", c.id, c.original, c.paper);
    std::printf("%6s %6s %14s %14s %10s %9s  %s\n", "TR", "FR",
                "morpheus[ms]", "w/HADAD[ms]", "RWfind[ms]", "speedup",
                "rewriting");
    for (double tr : tuple_ratios) {
      for (double fr : feature_ratios) {
        Rng rng(static_cast<uint64_t>(tr * 100 + fr));
        morpheus::PkFkConfig config;
        config.n_r = 500;
        config.d_s = 20;
        config.tuple_ratio = tr;
        config.feature_ratio = fr;
        morpheus::NormalizedMatrix nm = morpheus::GeneratePkFk(rng, config);
        engine::Workspace ws;
        ws.Put("G", matrix::RandomDense(rng, nm.cols(), 100));
        ws.Put("G2", matrix::RandomDense(rng, 100, nm.rows()));
        ws.Put("G3", matrix::RandomDense(rng, nm.rows(), nm.cols()));
        morpheus::MorpheusEngine morpheus_engine(&ws);
        morpheus_engine.Register("M", nm);

        la::MetaCatalog catalog = ws.BuildMetaCatalog();
        catalog["M"] = {.rows = nm.rows(), .cols = nm.cols(),
                        .nnz = static_cast<double>(nm.rows() * nm.cols())};
        pacb::Optimizer optimizer(catalog);
        auto rewrite = optimizer.OptimizeText(c.original);
        if (!rewrite.ok()) {
          std::printf("optimize failed: %s\n",
                      rewrite.status().ToString().c_str());
          return 1;
        }
        la::ExprPtr original = la::ParseExpression(c.original).value();
        const double base = TimeMorpheus(morpheus_engine, original);
        const double with_hadad = TimeMorpheus(morpheus_engine, rewrite->best);
        // Sanity: values agree.
        auto a = morpheus_engine.Run(original);
        auto b = morpheus_engine.Run(rewrite->best);
        HADAD_CHECK(a->ApproxEquals(*b, 1e-6));
        std::printf("%6.0f %6.0f %14.3f %14.3f %10.3f %8.2fx  %s\n", tr, fr,
                    base * 1e3, with_hadad * 1e3,
                    rewrite->optimize_seconds * 1e3,
                    with_hadad > 0 ? base / with_hadad : 1.0,
                    la::ToString(rewrite->best).c_str());
      }
    }
  }
  return 0;
}
