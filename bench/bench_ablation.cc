// Ablation study (DESIGN.md §6): what each design choice buys.
//   (a) Prune_prov on/off — chase size and RW_find time (§7.3's motivation:
//       commutativity/associativity blow the space up exponentially);
//   (b) naive vs MNC estimator — rewriting quality on sparse data (§9.1.1
//       reports the naive model misses 4 efficient rewritings);
//   (c) views on/off — the marginal value of view constraints.

#include <cstdio>

#include "core/hadad.h"

using namespace hadad;  // NOLINT

int main() {
  Rng rng(42);
  core::LaBenchConfig config;
  engine::Workspace ws = core::MakeLaBenchWorkspace(rng, config);
  la::MetaCatalog catalog = ws.BuildMetaCatalog();

  // --- (a) Pruning on/off. -------------------------------------------------
  std::printf("== Ablation (a): Prune_prov on vs off ==\n");
  std::printf("%-7s %10s %10s %10s | %10s %10s %10s\n", "id", "facts+",
              "pruned", "find[ms]", "facts+", "pruned", "find[ms]");
  std::printf("%-7s %-32s | %-32s\n", "", "           with pruning",
              "          without pruning");
  for (const char* id : {"P1.15", "P2.14", "P2.17", "P1.29", "P2.21"}) {
    const core::Pipeline* p = core::FindPipeline(id);
    pacb::OptimizerOptions with;
    pacb::Optimizer pruned(catalog, with);
    pacb::OptimizerOptions without;
    without.prune = false;
    pacb::Optimizer unpruned(catalog, without);
    auto a = pruned.OptimizeText(p->text);
    auto b = unpruned.OptimizeText(p->text);
    if (!a.ok() || !b.ok()) {
      std::printf("%s failed\n", id);
      continue;
    }
    std::printf("%-7s %10lld %10lld %10.2f | %10lld %10lld %10.2f\n", id,
                static_cast<long long>(a->chase_stats.facts_added),
                static_cast<long long>(a->chase_stats.pruned_applications),
                a->optimize_seconds * 1e3,
                static_cast<long long>(b->chase_stats.facts_added),
                static_cast<long long>(b->chase_stats.pruned_applications),
                b->optimize_seconds * 1e3);
    if (la::ToString(a->best) != la::ToString(b->best)) {
      std::printf("        NOTE: best plans differ: %s vs %s\n",
                  la::ToString(a->best).c_str(),
                  la::ToString(b->best).c_str());
    }
  }

  // --- (b) Estimator quality on sparse data. -------------------------------
  std::printf("\n== Ablation (b): naive vs MNC estimator (ultra-sparse A) "
              "==\n");
  core::LaBenchConfig sparse_config = config;
  sparse_config.a_sparsity = 0.000075;
  Rng rng2(43);
  engine::Workspace sparse_ws = core::MakeLaBenchWorkspace(rng2,
                                                           sparse_config);
  la::MetaCatalog sparse_catalog = sparse_ws.BuildMetaCatalog();
  pacb::OptimizerOptions naive_options;
  pacb::Optimizer naive_opt(sparse_catalog, naive_options);
  naive_opt.SetData(&sparse_ws.data());
  pacb::OptimizerOptions mnc_options;
  mnc_options.estimator = pacb::EstimatorKind::kMnc;
  pacb::Optimizer mnc_opt(sparse_catalog, mnc_options);
  mnc_opt.SetData(&sparse_ws.data());
  engine::Engine naive_engine(engine::Profile::kNaive, &sparse_ws);
  std::printf("%-7s %-30s %-30s\n", "id", "best (naive est.)",
              "best (MNC est.)");
  for (const char* id : {"P1.4", "P2.11", "P1.2", "P1.8"}) {
    const core::Pipeline* p = core::FindPipeline(id);
    auto a = naive_opt.OptimizeText(p->text);
    auto b = mnc_opt.OptimizeText(p->text);
    if (!a.ok() || !b.ok()) continue;
    std::printf("%-7s %-30s %-30s\n", id, la::ToString(a->best).c_str(),
                la::ToString(b->best).c_str());
  }

  // --- (c) Views on/off. ----------------------------------------------------
  std::printf("\n== Ablation (c): V_exp views on vs off ==\n");
  pacb::Optimizer no_views(catalog);
  engine::Workspace vws = core::MakeLaBenchWorkspace(rng, config);
  engine::ViewCatalog view_catalog(&vws);
  for (const core::ViewSpec& v : core::VexpViews()) {
    (void)view_catalog.MaterializeText(v.name, v.definition);
  }
  la::MetaCatalog base = vws.BuildMetaCatalog();
  for (const core::ViewSpec& v : core::VexpViews()) base.erase(v.name);
  pacb::Optimizer with_views(base);
  for (const core::ViewSpec& v : core::VexpViews()) {
    (void)with_views.AddViewText(v.name, v.definition);
  }
  std::printf("%-7s %14s %14s   %s\n", "id", "cost w/o views",
              "cost w/ views", "best w/ views");
  for (const char* id : {"P2.21", "P2.14", "P1.22", "P2.27"}) {
    const core::Pipeline* p = core::FindPipeline(id);
    auto a = no_views.OptimizeText(p->text);
    auto b = with_views.OptimizeText(p->text);
    if (!a.ok() || !b.ok()) continue;
    std::printf("%-7s %14.0f %14.0f   %s\n", id, a->best_cost, b->best_cost,
                la::ToString(b->best).c_str());
  }
  return 0;
}
