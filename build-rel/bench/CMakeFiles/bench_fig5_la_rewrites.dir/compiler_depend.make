# Empty compiler generated dependencies file for bench_fig5_la_rewrites.
# This may be replaced when dependencies are built.
