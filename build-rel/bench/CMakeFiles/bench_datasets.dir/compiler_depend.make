# Empty compiler generated dependencies file for bench_datasets.
# This may be replaced when dependencies are built.
