file(REMOVE_RECURSE
  "CMakeFiles/bench_datasets.dir/bench_datasets.cc.o"
  "CMakeFiles/bench_datasets.dir/bench_datasets.cc.o.d"
  "bench_datasets"
  "bench_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
