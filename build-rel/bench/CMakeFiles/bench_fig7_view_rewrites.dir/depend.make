# Empty dependencies file for bench_fig7_view_rewrites.
# This may be replaced when dependencies are built.
