file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_view_rewrites.dir/bench_fig7_view_rewrites.cc.o"
  "CMakeFiles/bench_fig7_view_rewrites.dir/bench_fig7_view_rewrites.cc.o.d"
  "bench_fig7_view_rewrites"
  "bench_fig7_view_rewrites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_view_rewrites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
