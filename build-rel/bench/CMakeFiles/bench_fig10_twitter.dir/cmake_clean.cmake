file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_twitter.dir/bench_fig10_twitter.cc.o"
  "CMakeFiles/bench_fig10_twitter.dir/bench_fig10_twitter.cc.o.d"
  "bench_fig10_twitter"
  "bench_fig10_twitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_twitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
