# Empty compiler generated dependencies file for bench_fig10_twitter.
# This may be replaced when dependencies are built.
