# Empty compiler generated dependencies file for bench_fig8_speedup_distribution.
# This may be replaced when dependencies are built.
