file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_speedup_distribution.dir/bench_fig8_speedup_distribution.cc.o"
  "CMakeFiles/bench_fig8_speedup_distribution.dir/bench_fig8_speedup_distribution.cc.o.d"
  "bench_fig8_speedup_distribution"
  "bench_fig8_speedup_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_speedup_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
