# Empty dependencies file for bench_fig9_morpheus.
# This may be replaced when dependencies are built.
