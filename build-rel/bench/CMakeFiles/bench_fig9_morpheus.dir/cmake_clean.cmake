file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_morpheus.dir/bench_fig9_morpheus.cc.o"
  "CMakeFiles/bench_fig9_morpheus.dir/bench_fig9_morpheus.cc.o.d"
  "bench_fig9_morpheus"
  "bench_fig9_morpheus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_morpheus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
