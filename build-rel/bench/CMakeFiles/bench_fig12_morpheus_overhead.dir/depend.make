# Empty dependencies file for bench_fig12_morpheus_overhead.
# This may be replaced when dependencies are built.
