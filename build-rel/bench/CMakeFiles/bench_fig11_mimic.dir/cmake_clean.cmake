file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mimic.dir/bench_fig11_mimic.cc.o"
  "CMakeFiles/bench_fig11_mimic.dir/bench_fig11_mimic.cc.o.d"
  "bench_fig11_mimic"
  "bench_fig11_mimic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mimic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
