# Empty compiler generated dependencies file for bench_table2_3_pipelines.
# This may be replaced when dependencies are built.
