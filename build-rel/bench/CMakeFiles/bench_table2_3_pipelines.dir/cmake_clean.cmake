file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_3_pipelines.dir/bench_table2_3_pipelines.cc.o"
  "CMakeFiles/bench_table2_3_pipelines.dir/bench_table2_3_pipelines.cc.o.d"
  "bench_table2_3_pipelines"
  "bench_table2_3_pipelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_3_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
