# Empty dependencies file for bench_session_cache.
# This may be replaced when dependencies are built.
