file(REMOVE_RECURSE
  "CMakeFiles/bench_session_cache.dir/bench_session_cache.cc.o"
  "CMakeFiles/bench_session_cache.dir/bench_session_cache.cc.o.d"
  "bench_session_cache"
  "bench_session_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_session_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
