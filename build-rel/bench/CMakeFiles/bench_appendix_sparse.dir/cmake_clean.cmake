file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_sparse.dir/bench_appendix_sparse.cc.o"
  "CMakeFiles/bench_appendix_sparse.dir/bench_appendix_sparse.cc.o.d"
  "bench_appendix_sparse"
  "bench_appendix_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
