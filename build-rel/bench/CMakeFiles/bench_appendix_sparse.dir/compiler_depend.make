# Empty compiler generated dependencies file for bench_appendix_sparse.
# This may be replaced when dependencies are built.
