# Empty dependencies file for bench_sec913_overhead.
# This may be replaced when dependencies are built.
