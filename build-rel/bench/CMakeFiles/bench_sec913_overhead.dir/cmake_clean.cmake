file(REMOVE_RECURSE
  "CMakeFiles/bench_sec913_overhead.dir/bench_sec913_overhead.cc.o"
  "CMakeFiles/bench_sec913_overhead.dir/bench_sec913_overhead.cc.o.d"
  "bench_sec913_overhead"
  "bench_sec913_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec913_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
