file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_agg_rewrites.dir/bench_fig6_agg_rewrites.cc.o"
  "CMakeFiles/bench_fig6_agg_rewrites.dir/bench_fig6_agg_rewrites.cc.o.d"
  "bench_fig6_agg_rewrites"
  "bench_fig6_agg_rewrites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_agg_rewrites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
