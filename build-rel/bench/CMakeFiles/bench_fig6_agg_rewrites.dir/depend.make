# Empty dependencies file for bench_fig6_agg_rewrites.
# This may be replaced when dependencies are built.
