file(REMOVE_RECURSE
  "libhadad.a"
)
