
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/session.cc" "CMakeFiles/hadad.dir/src/api/session.cc.o" "gcc" "CMakeFiles/hadad.dir/src/api/session.cc.o.d"
  "/root/repo/src/chase/ast.cc" "CMakeFiles/hadad.dir/src/chase/ast.cc.o" "gcc" "CMakeFiles/hadad.dir/src/chase/ast.cc.o.d"
  "/root/repo/src/chase/engine.cc" "CMakeFiles/hadad.dir/src/chase/engine.cc.o" "gcc" "CMakeFiles/hadad.dir/src/chase/engine.cc.o.d"
  "/root/repo/src/chase/homomorphism.cc" "CMakeFiles/hadad.dir/src/chase/homomorphism.cc.o" "gcc" "CMakeFiles/hadad.dir/src/chase/homomorphism.cc.o.d"
  "/root/repo/src/chase/instance.cc" "CMakeFiles/hadad.dir/src/chase/instance.cc.o" "gcc" "CMakeFiles/hadad.dir/src/chase/instance.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/hadad.dir/src/common/status.cc.o" "gcc" "CMakeFiles/hadad.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "CMakeFiles/hadad.dir/src/common/strings.cc.o" "gcc" "CMakeFiles/hadad.dir/src/common/strings.cc.o.d"
  "/root/repo/src/core/data.cc" "CMakeFiles/hadad.dir/src/core/data.cc.o" "gcc" "CMakeFiles/hadad.dir/src/core/data.cc.o.d"
  "/root/repo/src/core/report.cc" "CMakeFiles/hadad.dir/src/core/report.cc.o" "gcc" "CMakeFiles/hadad.dir/src/core/report.cc.o.d"
  "/root/repo/src/core/workloads.cc" "CMakeFiles/hadad.dir/src/core/workloads.cc.o" "gcc" "CMakeFiles/hadad.dir/src/core/workloads.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "CMakeFiles/hadad.dir/src/cost/cost_model.cc.o" "gcc" "CMakeFiles/hadad.dir/src/cost/cost_model.cc.o.d"
  "/root/repo/src/cost/estimator.cc" "CMakeFiles/hadad.dir/src/cost/estimator.cc.o" "gcc" "CMakeFiles/hadad.dir/src/cost/estimator.cc.o.d"
  "/root/repo/src/engine/evaluator.cc" "CMakeFiles/hadad.dir/src/engine/evaluator.cc.o" "gcc" "CMakeFiles/hadad.dir/src/engine/evaluator.cc.o.d"
  "/root/repo/src/engine/profiles.cc" "CMakeFiles/hadad.dir/src/engine/profiles.cc.o" "gcc" "CMakeFiles/hadad.dir/src/engine/profiles.cc.o.d"
  "/root/repo/src/engine/view_catalog.cc" "CMakeFiles/hadad.dir/src/engine/view_catalog.cc.o" "gcc" "CMakeFiles/hadad.dir/src/engine/view_catalog.cc.o.d"
  "/root/repo/src/engine/workspace.cc" "CMakeFiles/hadad.dir/src/engine/workspace.cc.o" "gcc" "CMakeFiles/hadad.dir/src/engine/workspace.cc.o.d"
  "/root/repo/src/hybrid/dataset.cc" "CMakeFiles/hadad.dir/src/hybrid/dataset.cc.o" "gcc" "CMakeFiles/hadad.dir/src/hybrid/dataset.cc.o.d"
  "/root/repo/src/hybrid/queries.cc" "CMakeFiles/hadad.dir/src/hybrid/queries.cc.o" "gcc" "CMakeFiles/hadad.dir/src/hybrid/queries.cc.o.d"
  "/root/repo/src/la/catalog.cc" "CMakeFiles/hadad.dir/src/la/catalog.cc.o" "gcc" "CMakeFiles/hadad.dir/src/la/catalog.cc.o.d"
  "/root/repo/src/la/encoder.cc" "CMakeFiles/hadad.dir/src/la/encoder.cc.o" "gcc" "CMakeFiles/hadad.dir/src/la/encoder.cc.o.d"
  "/root/repo/src/la/expr.cc" "CMakeFiles/hadad.dir/src/la/expr.cc.o" "gcc" "CMakeFiles/hadad.dir/src/la/expr.cc.o.d"
  "/root/repo/src/la/parser.cc" "CMakeFiles/hadad.dir/src/la/parser.cc.o" "gcc" "CMakeFiles/hadad.dir/src/la/parser.cc.o.d"
  "/root/repo/src/matrix/decompositions.cc" "CMakeFiles/hadad.dir/src/matrix/decompositions.cc.o" "gcc" "CMakeFiles/hadad.dir/src/matrix/decompositions.cc.o.d"
  "/root/repo/src/matrix/dense_matrix.cc" "CMakeFiles/hadad.dir/src/matrix/dense_matrix.cc.o" "gcc" "CMakeFiles/hadad.dir/src/matrix/dense_matrix.cc.o.d"
  "/root/repo/src/matrix/generate.cc" "CMakeFiles/hadad.dir/src/matrix/generate.cc.o" "gcc" "CMakeFiles/hadad.dir/src/matrix/generate.cc.o.d"
  "/root/repo/src/matrix/matrix.cc" "CMakeFiles/hadad.dir/src/matrix/matrix.cc.o" "gcc" "CMakeFiles/hadad.dir/src/matrix/matrix.cc.o.d"
  "/root/repo/src/matrix/matrix_io.cc" "CMakeFiles/hadad.dir/src/matrix/matrix_io.cc.o" "gcc" "CMakeFiles/hadad.dir/src/matrix/matrix_io.cc.o.d"
  "/root/repo/src/matrix/sparse_matrix.cc" "CMakeFiles/hadad.dir/src/matrix/sparse_matrix.cc.o" "gcc" "CMakeFiles/hadad.dir/src/matrix/sparse_matrix.cc.o.d"
  "/root/repo/src/morpheus/engine.cc" "CMakeFiles/hadad.dir/src/morpheus/engine.cc.o" "gcc" "CMakeFiles/hadad.dir/src/morpheus/engine.cc.o.d"
  "/root/repo/src/morpheus/generator.cc" "CMakeFiles/hadad.dir/src/morpheus/generator.cc.o" "gcc" "CMakeFiles/hadad.dir/src/morpheus/generator.cc.o.d"
  "/root/repo/src/morpheus/normalized_matrix.cc" "CMakeFiles/hadad.dir/src/morpheus/normalized_matrix.cc.o" "gcc" "CMakeFiles/hadad.dir/src/morpheus/normalized_matrix.cc.o.d"
  "/root/repo/src/pacb/meta_tracker.cc" "CMakeFiles/hadad.dir/src/pacb/meta_tracker.cc.o" "gcc" "CMakeFiles/hadad.dir/src/pacb/meta_tracker.cc.o.d"
  "/root/repo/src/pacb/op_signature.cc" "CMakeFiles/hadad.dir/src/pacb/op_signature.cc.o" "gcc" "CMakeFiles/hadad.dir/src/pacb/op_signature.cc.o.d"
  "/root/repo/src/pacb/optimizer.cc" "CMakeFiles/hadad.dir/src/pacb/optimizer.cc.o" "gcc" "CMakeFiles/hadad.dir/src/pacb/optimizer.cc.o.d"
  "/root/repo/src/relational/casting.cc" "CMakeFiles/hadad.dir/src/relational/casting.cc.o" "gcc" "CMakeFiles/hadad.dir/src/relational/casting.cc.o.d"
  "/root/repo/src/relational/operators.cc" "CMakeFiles/hadad.dir/src/relational/operators.cc.o" "gcc" "CMakeFiles/hadad.dir/src/relational/operators.cc.o.d"
  "/root/repo/src/relational/table.cc" "CMakeFiles/hadad.dir/src/relational/table.cc.o" "gcc" "CMakeFiles/hadad.dir/src/relational/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
