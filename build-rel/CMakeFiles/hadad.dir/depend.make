# Empty dependencies file for hadad.
# This may be replaced when dependencies are built.
