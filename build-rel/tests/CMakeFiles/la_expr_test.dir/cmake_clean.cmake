file(REMOVE_RECURSE
  "CMakeFiles/la_expr_test.dir/la_expr_test.cc.o"
  "CMakeFiles/la_expr_test.dir/la_expr_test.cc.o.d"
  "la_expr_test"
  "la_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
