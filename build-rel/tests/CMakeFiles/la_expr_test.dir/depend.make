# Empty dependencies file for la_expr_test.
# This may be replaced when dependencies are built.
