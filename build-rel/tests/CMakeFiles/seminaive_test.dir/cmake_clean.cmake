file(REMOVE_RECURSE
  "CMakeFiles/seminaive_test.dir/seminaive_test.cc.o"
  "CMakeFiles/seminaive_test.dir/seminaive_test.cc.o.d"
  "seminaive_test"
  "seminaive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seminaive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
