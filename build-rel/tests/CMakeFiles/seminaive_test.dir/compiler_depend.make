# Empty compiler generated dependencies file for seminaive_test.
# This may be replaced when dependencies are built.
