file(REMOVE_RECURSE
  "CMakeFiles/expected_rewrites_test.dir/expected_rewrites_test.cc.o"
  "CMakeFiles/expected_rewrites_test.dir/expected_rewrites_test.cc.o.d"
  "expected_rewrites_test"
  "expected_rewrites_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expected_rewrites_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
