# Empty dependencies file for expected_rewrites_test.
# This may be replaced when dependencies are built.
