# Empty compiler generated dependencies file for matrix_edge_test.
# This may be replaced when dependencies are built.
