file(REMOVE_RECURSE
  "CMakeFiles/matrix_edge_test.dir/matrix_edge_test.cc.o"
  "CMakeFiles/matrix_edge_test.dir/matrix_edge_test.cc.o.d"
  "matrix_edge_test"
  "matrix_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
