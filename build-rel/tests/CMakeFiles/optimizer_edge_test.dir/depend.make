# Empty dependencies file for optimizer_edge_test.
# This may be replaced when dependencies are built.
