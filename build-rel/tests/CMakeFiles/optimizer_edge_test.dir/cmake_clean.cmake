file(REMOVE_RECURSE
  "CMakeFiles/optimizer_edge_test.dir/optimizer_edge_test.cc.o"
  "CMakeFiles/optimizer_edge_test.dir/optimizer_edge_test.cc.o.d"
  "optimizer_edge_test"
  "optimizer_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
