# Empty dependencies file for relational_test.
# This may be replaced when dependencies are built.
