file(REMOVE_RECURSE
  "CMakeFiles/relational_test.dir/relational_test.cc.o"
  "CMakeFiles/relational_test.dir/relational_test.cc.o.d"
  "relational_test"
  "relational_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
