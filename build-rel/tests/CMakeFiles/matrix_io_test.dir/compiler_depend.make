# Empty compiler generated dependencies file for matrix_io_test.
# This may be replaced when dependencies are built.
