file(REMOVE_RECURSE
  "CMakeFiles/matrix_io_test.dir/matrix_io_test.cc.o"
  "CMakeFiles/matrix_io_test.dir/matrix_io_test.cc.o.d"
  "matrix_io_test"
  "matrix_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
