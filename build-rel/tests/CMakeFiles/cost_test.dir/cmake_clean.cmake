file(REMOVE_RECURSE
  "CMakeFiles/cost_test.dir/cost_test.cc.o"
  "CMakeFiles/cost_test.dir/cost_test.cc.o.d"
  "cost_test"
  "cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
