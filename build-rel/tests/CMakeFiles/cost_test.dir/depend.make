# Empty dependencies file for cost_test.
# This may be replaced when dependencies are built.
