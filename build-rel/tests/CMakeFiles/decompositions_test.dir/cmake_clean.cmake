file(REMOVE_RECURSE
  "CMakeFiles/decompositions_test.dir/decompositions_test.cc.o"
  "CMakeFiles/decompositions_test.dir/decompositions_test.cc.o.d"
  "decompositions_test"
  "decompositions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decompositions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
