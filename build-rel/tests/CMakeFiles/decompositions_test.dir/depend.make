# Empty dependencies file for decompositions_test.
# This may be replaced when dependencies are built.
