# Empty compiler generated dependencies file for la_encoding_test.
# This may be replaced when dependencies are built.
