file(REMOVE_RECURSE
  "CMakeFiles/la_encoding_test.dir/la_encoding_test.cc.o"
  "CMakeFiles/la_encoding_test.dir/la_encoding_test.cc.o.d"
  "la_encoding_test"
  "la_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
