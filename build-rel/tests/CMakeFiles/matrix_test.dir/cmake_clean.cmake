file(REMOVE_RECURSE
  "CMakeFiles/matrix_test.dir/matrix_test.cc.o"
  "CMakeFiles/matrix_test.dir/matrix_test.cc.o.d"
  "matrix_test"
  "matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
