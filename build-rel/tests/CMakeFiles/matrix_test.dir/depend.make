# Empty dependencies file for matrix_test.
# This may be replaced when dependencies are built.
