file(REMOVE_RECURSE
  "CMakeFiles/hybrid_test.dir/hybrid_test.cc.o"
  "CMakeFiles/hybrid_test.dir/hybrid_test.cc.o.d"
  "hybrid_test"
  "hybrid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
