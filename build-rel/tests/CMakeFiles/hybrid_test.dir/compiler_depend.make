# Empty compiler generated dependencies file for hybrid_test.
# This may be replaced when dependencies are built.
