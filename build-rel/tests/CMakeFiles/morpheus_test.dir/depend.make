# Empty dependencies file for morpheus_test.
# This may be replaced when dependencies are built.
