file(REMOVE_RECURSE
  "CMakeFiles/morpheus_test.dir/morpheus_test.cc.o"
  "CMakeFiles/morpheus_test.dir/morpheus_test.cc.o.d"
  "morpheus_test"
  "morpheus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
