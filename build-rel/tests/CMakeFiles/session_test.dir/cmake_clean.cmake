file(REMOVE_RECURSE
  "CMakeFiles/session_test.dir/session_test.cc.o"
  "CMakeFiles/session_test.dir/session_test.cc.o.d"
  "session_test"
  "session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
