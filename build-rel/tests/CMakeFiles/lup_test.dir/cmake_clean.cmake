file(REMOVE_RECURSE
  "CMakeFiles/lup_test.dir/lup_test.cc.o"
  "CMakeFiles/lup_test.dir/lup_test.cc.o.d"
  "lup_test"
  "lup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
