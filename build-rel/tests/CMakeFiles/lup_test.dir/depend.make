# Empty dependencies file for lup_test.
# This may be replaced when dependencies are built.
