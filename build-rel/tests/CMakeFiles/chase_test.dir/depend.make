# Empty dependencies file for chase_test.
# This may be replaced when dependencies are built.
