file(REMOVE_RECURSE
  "CMakeFiles/chase_test.dir/chase_test.cc.o"
  "CMakeFiles/chase_test.dir/chase_test.cc.o.d"
  "chase_test"
  "chase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
