file(REMOVE_RECURSE
  "CMakeFiles/pacb_test.dir/pacb_test.cc.o"
  "CMakeFiles/pacb_test.dir/pacb_test.cc.o.d"
  "pacb_test"
  "pacb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
