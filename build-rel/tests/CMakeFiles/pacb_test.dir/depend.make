# Empty dependencies file for pacb_test.
# This may be replaced when dependencies are built.
