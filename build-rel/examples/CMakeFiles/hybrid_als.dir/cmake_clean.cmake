file(REMOVE_RECURSE
  "CMakeFiles/hybrid_als.dir/hybrid_als.cpp.o"
  "CMakeFiles/hybrid_als.dir/hybrid_als.cpp.o.d"
  "hybrid_als"
  "hybrid_als.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_als.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
