# Empty dependencies file for hybrid_als.
# This may be replaced when dependencies are built.
