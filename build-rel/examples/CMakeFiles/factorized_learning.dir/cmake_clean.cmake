file(REMOVE_RECURSE
  "CMakeFiles/factorized_learning.dir/factorized_learning.cpp.o"
  "CMakeFiles/factorized_learning.dir/factorized_learning.cpp.o.d"
  "factorized_learning"
  "factorized_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factorized_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
