# Empty compiler generated dependencies file for factorized_learning.
# This may be replaced when dependencies are built.
