# Empty compiler generated dependencies file for ols_regression.
# This may be replaced when dependencies are built.
