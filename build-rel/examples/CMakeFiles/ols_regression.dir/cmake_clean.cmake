file(REMOVE_RECURSE
  "CMakeFiles/ols_regression.dir/ols_regression.cpp.o"
  "CMakeFiles/ols_regression.dir/ols_regression.cpp.o.d"
  "ols_regression"
  "ols_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ols_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
